// Exception-handler discovery (§IV-C, Tables II/III):
//
//   SehExtractor     — static pass: parse the exception directory (scope
//                      tables) out of serialized MVX images, the analog of
//                      walking a PE's .pdata/.xdata.
//   FilterClassifier — symbolically execute each unique filter function and
//                      ask the SAT backend whether any path can accept an
//                      access violation (EXECUTE_HANDLER or
//                      CONTINUE_EXECUTION under exc_code == AV).
//   CoverageXref     — dynamic pass: cross-reference AV-capable guarded
//                      regions with traced execution coverage, yielding the
//                      "on execution path" column and trigger counts.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "analysis/candidates.h"
#include "isa/image.h"
#include "symex/expr.h"
#include "trace/tracer.h"

namespace crp::analysis {

/// One handler site found statically.
struct HandlerSite {
  std::string module;
  isa::Machine machine = isa::Machine::kX64;
  isa::ScopeEntry scope;
  bool catch_all = false;
};

/// Classification verdict for a filter function.
enum class FilterVerdict : u8 {
  kAcceptsAv = 0,    // some path handles AV (or catch-all)
  kRejectsAv,        // proven: no path handles AV
  kNeedsManual,      // external call / truncation: no clean verdict (§VII-A)
};

const char* filter_verdict_name(FilterVerdict v);

struct FilterInfo {
  std::string module;
  u64 offset = 0;        // code offset (kFilterCatchAll for constant filters)
  isa::Machine machine = isa::Machine::kX64;
  FilterVerdict verdict = FilterVerdict::kNeedsManual;
  size_t paths_explored = 0;
  size_t handlers_using = 0;  // scope entries referencing this filter
};

/// Static extraction over a set of serialized images.
class SehExtractor {
 public:
  /// Parse one serialized image; returns false on malformed input.
  bool add_image_bytes(std::span<const u8> bytes);
  /// Parse a batch of serialized images, sharding the parses across a
  /// thread pool (`jobs` as for exec::resolve_jobs). Images are added in
  /// input order, identical to calling add_image_bytes in a loop; malformed
  /// blobs are skipped and make the call return false.
  bool add_images_bytes(const std::vector<std::vector<u8>>& blobs, int jobs = 0);
  /// Convenience for already-parsed images.
  void add_image(std::shared_ptr<const isa::Image> image);

  const std::vector<HandlerSite>& handlers() const { return handlers_; }
  const std::vector<std::shared_ptr<const isa::Image>>& images() const { return images_; }

  /// Unique (module, filter-offset) pairs, catch-all excluded.
  std::vector<std::pair<std::string, u64>> unique_filters() const;

  /// Handlers in one module.
  std::vector<const HandlerSite*> handlers_in(const std::string& module) const;

 private:
  std::vector<std::shared_ptr<const isa::Image>> images_;
  std::vector<HandlerSite> handlers_;
};

struct ClassifyOptions {
  size_t max_paths = 64;
  u64 max_steps = 4096;
  u64 solver_conflicts = 1u << 20;
  /// Count CONTINUE_EXECUTION as "handles the AV" (it does: execution
  /// resumes — the Firefox VEH idiom).
  bool continue_execution_counts = true;
};

/// Content hash of a filter function's *behavioral* identity: the code
/// reachable from `filter_off` (CFG traversal), with PC-relative data
/// references replaced by the referenced static bytes and import calls by
/// the imported module/symbol names. Two filters with equal hashes execute
/// identically under FilterExecutor (same paths, same verdict), regardless
/// of which module they sit in or at which offset — the key for the
/// classify memo cache below.
u64 filter_body_hash(const isa::Image& image, u64 filter_off);

class FilterClassifier {
 public:
  explicit FilterClassifier(ClassifyOptions opts = {}) : opts_(opts) {}

  /// Classify every unique filter of `ex`, sharding the symbolic executions
  /// across a thread pool (`jobs` as for exec::resolve_jobs; each task gets
  /// its own symex::Ctx/Solver — hash-consing contexts are not shareable
  /// across threads). Results are merged in input order and a verdict memo
  /// cache keyed by filter_body_hash classifies duplicate filter bodies
  /// (catch-all / delegating templates stamped across DLLs) only once, so
  /// the output and all funnel counters are identical for any job count.
  /// Catch-all handlers are accepted structurally (no symbolic execution).
  std::vector<FilterInfo> classify_all(const SehExtractor& ex, int jobs = 0);

  /// Classify one filter in one image.
  FilterVerdict classify(const isa::Image& image, u64 filter_off, size_t* paths_out = nullptr);

  /// Unique filter bodies symbolically executed (memo-cache misses).
  u64 filters_executed() const { return executed_; }
  u64 sat_queries() const { return queries_; }
  /// classify_all items answered from the verdict memo cache.
  u64 memo_hits() const { return memo_hits_; }

 private:
  struct Outcome {
    FilterVerdict verdict = FilterVerdict::kNeedsManual;
    size_t paths = 0;
    u64 queries = 0;
  };

  /// Pure classification: no counter mutation, safe to run concurrently.
  Outcome classify_detail(const isa::Image& image, u64 filter_off) const;

  ClassifyOptions opts_;
  u64 executed_ = 0;
  u64 queries_ = 0;
  u64 memo_hits_ = 0;
  /// filter_body_hash -> outcome, shared across classify_all calls.
  std::mutex memo_mu_;
  std::unordered_map<u64, Outcome> memo_;
};

/// Per-module funnel counts — the rows of Tables II and III.
struct ModuleSehStats {
  std::string module;
  isa::Machine machine = isa::Machine::kX64;
  // Table II: guarded program-code locations.
  size_t guarded_total = 0;        // before symbolic execution
  size_t guarded_av_capable = 0;   // after symbolic execution
  size_t guarded_on_path = 0;      // AV-capable and executed
  u64 trigger_events = 0;          // total hits inside AV-capable guards
  // Table III: unique filter functions.
  size_t filters_total = 0;
  size_t filters_av_capable = 0;
};

class CoverageXref {
 public:
  /// Compute per-module stats: `filters` from FilterClassifier;
  /// `tracer`+`proc` supply dynamic coverage (pass nullptr for static-only).
  static std::vector<ModuleSehStats> compute(const SehExtractor& ex,
                                             const std::vector<FilterInfo>& filters,
                                             const trace::Tracer* tracer,
                                             const os::Process* proc);

  /// Exception-handler candidates (AV-capable, executed) as Candidate rows.
  static std::vector<Candidate> candidates(const SehExtractor& ex,
                                           const std::vector<FilterInfo>& filters,
                                           const trace::Tracer* tracer,
                                           const os::Process* proc,
                                           const std::string& target_name);
};

}  // namespace crp::analysis
