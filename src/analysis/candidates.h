// Result types shared across the discovery pipeline: the classification of
// crash-resistant primitive candidates (§III) and the verdicts the scanners
// and verifiers attach to them.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "os/abi.h"
#include "util/common.h"

namespace crp::analysis {

/// The paper's three primitive classes (§III-A/B/C).
enum class PrimitiveClass : u8 {
  kSyscall = 0,        // Linux syscall returning -EFAULT (§III-A1)
  kWinApi,             // Windows API validating pointer args (§III-A2)
  kExceptionHandler,   // SEH/VEH/signal handler accepting AVs (§III-B)
  kSwallowedException, // classified but excluded from analysis (§III-C)
};

const char* primitive_class_name(PrimitiveClass c);

/// Verification verdict for one candidate (Table I cell states).
enum class Verdict : u8 {
  kUntested = 0,
  kCrashes,          // corruption crashed the process: not crash-resistant
  kNotControllable,  // survives, but the attacker cannot steer the pointer
  kUsable,           // survives, pointer controllable, service stays up
  kFalsePositive,    // survives + controllable, but probing breaks service
                     // (the Memcached epoll_wait case)
};

const char* verdict_name(Verdict v);

/// Why a Windows API candidate was excluded during controllability
/// classification (the three reasons of §V-B).
enum class ExclusionReason : u8 {
  kNone = 0,
  kStackPointer,     // arg is a short-lived stack-allocated struct
  kDerefedOutside,   // pointer dereferenced outside the resistant function
  kVolatileHeap,     // volatile heap pointer with no stored reference
};

const char* exclusion_reason_name(ExclusionReason r);

/// One discovered candidate, in any class.
struct Candidate {
  PrimitiveClass cls = PrimitiveClass::kSyscall;
  std::string target;        // process/application name
  // kSyscall:
  os::Sys syscall = os::Sys::kCount;
  int pointer_arg = 0;       // 1-based argument slot
  u64 taint_mask = 0;        // colors observed on the pointer value
  std::optional<gva_t> pointer_home;  // memory the pointer was loaded from
  /// True when pointer_home lies in attacker-writable, non-stack memory
  /// (heap object / writable globals): with the threat model's arbitrary
  /// write primitive, the attacker can steer the pointer through its home.
  bool controllable_home = false;
  // kWinApi:
  u32 api_id = 0;
  std::string api_name;
  gva_t call_site = 0;
  bool script_triggerable = false;
  ExclusionReason exclusion = ExclusionReason::kNone;
  // kExceptionHandler:
  std::string module;
  u64 scope_begin = 0, scope_end = 0;  // code-section offsets
  u64 filter_off = 0;                  // or isa::kFilterCatchAll
  bool catch_all = false;

  Verdict verdict = Verdict::kUntested;
  std::string note;

  std::string describe() const;
};

}  // namespace crp::analysis
