// TargetProgram: everything the discovery pipeline needs to know about one
// application under analysis — its images, how to drive its test suite (the
// paper reuses each server's standard test suite, §IV-A), and how to check
// that the *service* is still alive (the strategy that catches the
// Memcached false positive, §V-A).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "isa/image.h"
#include "os/kernel.h"

namespace crp::analysis {

struct TargetProgram {
  std::string name;
  vm::Personality personality = vm::Personality::kLinux;
  std::vector<std::shared_ptr<const isa::Image>> images;  // DLLs first, main last
  u16 port = 0;

  /// Prepare the environment (VFS fixtures, upstream listeners) before the
  /// process starts.
  std::function<void(os::Kernel&)> setup;

  /// Drive the application's workload (test suite / page visits) against a
  /// freshly started instance; returns when the workload is complete or the
  /// process died.
  std::function<void(os::Kernel&, int pid)> workload;

  /// True if the service still serves a brand-new client end-to-end.
  std::function<bool(os::Kernel&, int pid)> service_alive;

  /// Instantiate into a fresh kernel: setup + create + load + start. Returns pid.
  int instantiate(os::Kernel& k, u64 aslr_seed) const {
    if (setup) setup(k);
    int pid = k.create_process(name, personality, aslr_seed);
    for (const auto& img : images) k.proc(pid).load(img);
    k.start_process(pid);
    return pid;
  }
};

}  // namespace crp::analysis
