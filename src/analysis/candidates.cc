#include "analysis/candidates.h"

namespace crp::analysis {

const char* primitive_class_name(PrimitiveClass c) {
  switch (c) {
    case PrimitiveClass::kSyscall: return "syscall";
    case PrimitiveClass::kWinApi: return "winapi";
    case PrimitiveClass::kExceptionHandler: return "exception-handler";
    case PrimitiveClass::kSwallowedException: return "swallowed-exception";
  }
  return "?";
}

const char* verdict_name(Verdict v) {
  switch (v) {
    case Verdict::kUntested: return "untested";
    case Verdict::kCrashes: return "crashes";
    case Verdict::kNotControllable: return "not-controllable";
    case Verdict::kUsable: return "usable";
    case Verdict::kFalsePositive: return "false-positive";
  }
  return "?";
}

const char* exclusion_reason_name(ExclusionReason r) {
  switch (r) {
    case ExclusionReason::kNone: return "none";
    case ExclusionReason::kStackPointer: return "stack-pointer";
    case ExclusionReason::kDerefedOutside: return "derefed-outside";
    case ExclusionReason::kVolatileHeap: return "volatile-heap";
  }
  return "?";
}

std::string Candidate::describe() const {
  switch (cls) {
    case PrimitiveClass::kSyscall:
      return strf("[syscall] %s: %s(arg%d) taint=0x%llx verdict=%s%s%s", target.c_str(),
                  os::sys_name(syscall), pointer_arg,
                  static_cast<unsigned long long>(taint_mask), verdict_name(verdict),
                  note.empty() ? "" : " — ", note.c_str());
    case PrimitiveClass::kWinApi:
      return strf("[winapi] %s: %s @0x%llx js=%d excl=%s verdict=%s", target.c_str(),
                  api_name.c_str(), static_cast<unsigned long long>(call_site),
                  script_triggerable ? 1 : 0, exclusion_reason_name(exclusion),
                  verdict_name(verdict));
    case PrimitiveClass::kExceptionHandler:
      return strf("[seh] %s!%s scope=[0x%llx,0x%llx) filter=%s verdict=%s", target.c_str(),
                  module.c_str(), static_cast<unsigned long long>(scope_begin),
                  static_cast<unsigned long long>(scope_end),
                  catch_all ? "catch-all" : strf("0x%llx", static_cast<unsigned long long>(filter_off)).c_str(),
                  verdict_name(verdict));
    case PrimitiveClass::kSwallowedException:
      return strf("[swallowed] %s", target.c_str());
  }
  return "?";
}

}  // namespace crp::analysis
