#include "analysis/api_analysis.h"

#include <algorithm>

#include "exec/thread_pool.h"
#include "os/kernel.h"
#include "util/log.h"

namespace crp::analysis {

namespace {

/// Invalid-pointer probe set: unmapped low, unmapped high, non-canonical-ish.
constexpr gva_t kProbes[] = {0x0000'0000'0000'0010ull, 0x0000'6e00'bad0'0000ull,
                             0x0000'7ffd'dddd'0000ull};

}  // namespace

bool ApiFuzzer::fuzz_one(os::Kernel& kernel, u32 api_id) {
  const os::ApiSpec* spec = kernel.winapi().find(api_id);
  if (spec == nullptr || !spec->has_pointer_arg()) return false;

  for (size_t arg = 0; arg < spec->args.size(); ++arg) {
    if (spec->args[arg] == os::ArgKind::kValue) continue;
    for (int probe = 0; probe < probes_per_arg_; ++probe) {
      gva_t bad = kProbes[static_cast<size_t>(probe) % std::size(kProbes)];
      // Scratch process: a throwaway address space so a "fault" is cleanly
      // observable and cannot poison subsequent probes.
      int pid = kernel.create_process(strf("fuzz-%u", api_id), vm::Personality::kWindows,
                                      0x5eed + api_id * 131 + static_cast<u64>(probe));
      os::Process& p = kernel.proc(pid);
      // Valid scratch buffer for the *other* pointer args so only the probed
      // slot is invalid.
      gva_t scratch = p.heap_alloc(4096, mem::kPermR | mem::kPermW);
      os::Thread t;
      t.tid = 1;
      t.cpu.pc = isa::kInstrBytes;  // fault attribution only
      u64 args[6] = {};
      for (size_t i = 0; i < spec->args.size() && i < 6; ++i)
        args[i] = spec->args[i] == os::ArgKind::kValue ? 8 : scratch;
      args[arg] = bad;
      os::ApiResult r = kernel.invoke_api(p, t, api_id, args);
      kernel.destroy_process(pid);
      if (r.fault.has_value()) return false;  // faulted: not crash-resistant
    }
  }
  return true;
}

ApiFuzzResult ApiFuzzer::fuzz_all(os::Kernel& kernel, int jobs) {
  ApiFuzzResult res;
  std::vector<u32> fuzz_ids;
  for (const auto& [id, spec] : kernel.winapi().all()) {
    ++res.total_apis;
    if (!spec.has_pointer_arg()) continue;
    ++res.with_pointer_args;
    int nptr = 0;
    for (auto k : spec.args) nptr += k != os::ArgKind::kValue ? 1 : 0;
    res.probes_executed += static_cast<u32>(nptr * probes_per_arg_);
    fuzz_ids.push_back(id);
  }

  // Shard contiguous id ranges across workers. Every chunk fuzzes against
  // its own scratch kernel (copy of the API surface), so verdicts cannot
  // depend on chunking or scheduling — only on the spec and the id-derived
  // process seeds inside fuzz_one. Merging chunk results in input order
  // keeps crash_resistant identical for any job count.
  exec::ThreadPool pool(jobs);
  size_t chunk_size =
      std::max<size_t>(1, (fuzz_ids.size() + static_cast<size_t>(pool.jobs()) * 8 - 1) /
                              (static_cast<size_t>(pool.jobs()) * 8));
  std::vector<std::pair<size_t, size_t>> chunks;  // [begin, end) into fuzz_ids
  for (size_t b = 0; b < fuzz_ids.size(); b += chunk_size)
    chunks.emplace_back(b, std::min(b + chunk_size, fuzz_ids.size()));

  auto chunk_resistant = exec::parallel_map(
      pool, chunks,
      [&](size_t, const std::pair<size_t, size_t>& c) {
        // Copy only this chunk's specs: cloning the full 20k-spec surface
        // into every scratch kernel costs more than the fuzzing itself.
        os::Kernel scratch;
        for (size_t i = c.first; i < c.second; ++i) {
          const os::ApiSpec* spec = kernel.winapi().find(fuzz_ids[i]);
          if (spec != nullptr && scratch.winapi().find(fuzz_ids[i]) == nullptr)
            scratch.winapi().add(*spec);
        }
        std::vector<u32> resistant;
        for (size_t i = c.first; i < c.second; ++i)
          if (fuzz_one(scratch, fuzz_ids[i])) resistant.push_back(fuzz_ids[i]);
        return resistant;
      },
      "fuzz-api-chunk");
  for (const auto& ids : chunk_resistant) res.crash_resistant.insert(ids.begin(), ids.end());
  return res;
}

std::vector<ApiSiteInfo> ApiCallSiteTracer::analyze(const trace::Tracer& tracer,
                                                    const std::set<u32>& crash_resistant,
                                                    const os::Kernel& kernel,
                                                    const os::Process& proc,
                                                    const std::string& script_module_needle) {
  std::map<std::pair<u32, gva_t>, ApiSiteInfo> sites;

  for (const auto& rec : tracer.api_calls()) {
    if (!crash_resistant.contains(rec.api_id)) continue;
    auto key = std::make_pair(rec.api_id, rec.call_site);
    ApiSiteInfo& info = sites[key];
    if (info.times_called == 0) {
      info.api_id = rec.api_id;
      const os::ApiSpec* spec = kernel.winapi().find(rec.api_id);
      info.api_name = spec != nullptr ? spec->name : strf("api#%u", rec.api_id);
      info.call_site = rec.call_site;
    }
    ++info.times_called;
    info.script_triggerable |= trace::Tracer::stack_touches_module(rec, script_module_needle);

    // Pointer-argument controllability: inspect the first pointer arg value.
    const os::ApiSpec* spec = kernel.winapi().find(rec.api_id);
    if (spec == nullptr) continue;
    for (size_t i = 0; i < spec->args.size() && i < 6; ++i) {
      if (spec->args[i] == os::ArgKind::kValue) continue;
      gva_t ptr = rec.args[i];
      ExclusionReason reason = ExclusionReason::kNone;
      const auto* placement = proc.machine().layout().find(ptr);
      if (placement != nullptr && placement->kind == mem::RegionKind::kStack) {
        // §V-B reason 1: stack-allocated structure — corrupting it corrupts
        // the stack pointer chain and the program dies elsewhere.
        reason = ExclusionReason::kStackPointer;
      } else if (tracer.guest_touched(ptr)) {
        // §V-B reason 2: the program also dereferences this pointer outside
        // the crash-resistant function.
        reason = ExclusionReason::kDerefedOutside;
      } else {
        // §V-B reason 3: volatile heap pointer — usable only if some stored
        // reference lets the attacker find and redirect it.
        bool referenced = false;
        for (const auto& region : proc.machine().mem().regions()) {
          for (gva_t a = region.begin; a + 8 <= region.end && !referenced; a += 8) {
            u64 v = 0;
            if (proc.machine().mem().peek_u64(a, &v) && v == ptr) referenced = true;
          }
          if (referenced) break;
        }
        if (!referenced) reason = ExclusionReason::kVolatileHeap;
      }
      // Keep the *worst* (any exclusion sticks; kNone only if always clean).
      if (info.times_called == 1) {
        info.exclusion = reason;
      } else if (reason != ExclusionReason::kNone) {
        info.exclusion = reason;
      }
      break;  // classify by the first pointer argument
    }
  }

  std::vector<ApiSiteInfo> out;
  for (auto& [_, s] : sites) out.push_back(std::move(s));
  return out;
}

std::vector<Candidate> ApiCallSiteTracer::candidates(const std::vector<ApiSiteInfo>& sites,
                                                     const std::string& target_name) {
  std::vector<Candidate> out;
  for (const auto& s : sites) {
    Candidate c;
    c.cls = PrimitiveClass::kWinApi;
    c.target = target_name;
    c.api_id = s.api_id;
    c.api_name = s.api_name;
    c.call_site = s.call_site;
    c.script_triggerable = s.script_triggerable;
    c.exclusion = s.exclusion;
    c.verdict = s.exclusion == ExclusionReason::kNone ? Verdict::kUsable
                                                      : Verdict::kNotControllable;
    out.push_back(c);
  }
  return out;
}

}  // namespace crp::analysis
