// SignalScanner: the Linux face of the §III-B exception-handler class.
//
// On Linux, crash-resistant exception handling means a sigaction-installed
// SIGSEGV/SIGBUS handler that *recovers* — edits the saved pc in the
// ucontext so execution resumes somewhere useful (the idiom managed
// runtimes use for implicit null checks). The scanner reads the runtime
// signal table (the dynamic analog of AddVectoredExceptionHandler
// harvesting), maps each handler back to its module, and symbolically
// executes it under the signal prototype; a handler is a primitive
// candidate if some SIGSEGV path writes the saved pc.
#pragma once

#include <vector>

#include "analysis/candidates.h"
#include "analysis/seh_analysis.h"
#include "os/kernel.h"

namespace crp::analysis {

struct SignalHandlerInfo {
  int signo = 0;
  gva_t handler = 0;
  std::string module;
  u64 offset = 0;
  FilterVerdict verdict = FilterVerdict::kNeedsManual;  // kAcceptsAv = recovers
  size_t paths_explored = 0;
};

class SignalScanner {
 public:
  /// Inspect `proc`'s installed handlers for SIGBUS(7), SIGFPE(8), SIGSEGV(11).
  static std::vector<SignalHandlerInfo> scan(const os::Process& proc,
                                             ClassifyOptions opts = {});

  static std::vector<Candidate> candidates(const std::vector<SignalHandlerInfo>& handlers,
                                           const std::string& target_name);
};

}  // namespace crp::analysis
