// Paper-style table renderers: Table I (syscall candidate matrix),
// Table II (guarded code locations per DLL), Table III (filter functions
// before/after symbolic execution), and the §V-B API funnel.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "analysis/api_analysis.h"
#include "analysis/candidates.h"
#include "analysis/seh_analysis.h"
#include "analysis/syscall_scanner.h"

namespace crp::analysis {

/// Table I: rows = EFAULT-capable syscalls, columns = servers. Cell legend:
///   "(+)"  usable crash-resistant primitive (verified)
///   "FP"   false positive (survives but service dies)
///   "+-"   observed candidate, but crashes or not controllable
///   "."    not observed on the test-suite execution path
std::string render_table1(const std::vector<std::string>& servers,
                          const std::map<std::string, SyscallScanResult>& results);

/// Table II: guarded program code per module (before SB / after SB / on path).
std::string render_table2(const std::vector<ModuleSehStats>& stats);

/// Table III: unique exception filters per module before/after symbolic
/// execution, split by machine population (x64 / x32).
std::string render_table3(const std::vector<ModuleSehStats>& x64,
                          const std::vector<ModuleSehStats>& x32);

/// §V-B funnel rendering.
struct ApiFunnel {
  u32 total = 0;
  u32 with_pointer = 0;
  u32 crash_resistant = 0;
  u32 on_execution_path = 0;
  u32 script_triggerable = 0;
  u32 controllable = 0;
  std::map<std::string, u32> exclusion_histogram;
};

std::string render_api_funnel(const ApiFunnel& funnel);

/// Flat candidate listing.
std::string render_candidates(const std::vector<Candidate>& cands);

/// Unified pipeline-metrics block (the crp::obs global registry): every
/// counter/gauge/histogram any layer touched during the run, one per line.
/// `skip_zero` (default) drops never-touched metrics.
std::string render_metrics(bool skip_zero = true);

}  // namespace crp::analysis
