#include "exec/thread_pool.h"

#include <chrono>
#include <cstdlib>
#include <numeric>

#include "chaos/chaos.h"
#include "obs/journal.h"
#include "obs/ledger.h"
#include "obs/obs.h"
#include "util/rng.h"

namespace crp::exec {

namespace {

u64 wall_ns() {
  return static_cast<u64>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                              std::chrono::steady_clock::now().time_since_epoch())
                              .count());
}

u64 splitmix64(u64 x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

int resolve_jobs(int jobs) {
  if (jobs > 0) return jobs;
  if (const char* env = std::getenv("CRP_JOBS")) {
    int v = std::atoi(env);
    if (v > 0) return v;
  }
  unsigned hc = std::thread::hardware_concurrency();
  return hc > 0 ? static_cast<int>(hc) : 1;
}

u64 task_seed(u64 base_seed, u64 index) {
  return splitmix64(base_seed ^ splitmix64(index));
}

ThreadPool::ThreadPool(int jobs) : jobs_(resolve_jobs(jobs)) {
  obs::Registry& reg = obs::Registry::global();
  c_tasks_ = &reg.counter("analysis.pool.tasks");
  h_steal_ns_ = &reg.histogram("analysis.pool.steal_ns");
  workers_.reserve(static_cast<size_t>(jobs_ - 1));
  for (int i = 1; i < jobs_; ++i) workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_work_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::drain(const std::function<void(u64)>& fn, u64 n, const char* label) {
  for (;;) {
    u64 i = next_.fetch_add(1, std::memory_order_relaxed);
    if (i >= n) break;
    // Under a perturbed batch, claim i runs task chaos_order_[i]; the task's
    // chaos salt follows the *task* index, so per-item injection streams are
    // identical whether or not the order was shuffled.
    u64 task = chaos_on_ && !chaos_order_.empty() ? chaos_order_[i] : i;
    // Trace lane derived from the *task* id, never from thread identity:
    // spans from two runs of the same batch land on the same lane at any
    // job count, so Chrome traces diff cleanly across runs.
    u32 lane = 1 + static_cast<u32>(task % obs::kJournalTaskLanes);
    u64 t0 = wall_ns();
    {
      obs::ScopedJournalLane lane_scope(lane);
      // Tasks inherit the batch issuer's profiler context (stage/target).
      obs::ScopedProfContext prof_scope(prof_batch_ctx_);
      if (chaos_on_) {
        chaos::TaskScope scope(task_seed(chaos_batch_salt_, task));
        fn(task);
      } else {
        fn(task);
      }
    }
    obs::Journal::global().span(label, "exec", t0 / 1000, (wall_ns() - t0) / 1000, lane,
                               "task", static_cast<i64>(task));
    c_tasks_->inc();
    if (done_.fetch_add(1, std::memory_order_acq_rel) + 1 == n) {
      // Take the lock so the notify cannot race the caller between its
      // predicate check and its wait.
      { std::lock_guard<std::mutex> lock(mu_); }
      cv_done_.notify_all();
    }
  }
}

void ThreadPool::worker_loop() {
  // Pre-create this worker's flight-recorder ring so its first probe event
  // (tasks routinely probe through oracles) stays lock-free.
  obs::Ledger::global().register_current_thread();
  u64 seen_gen = 0;
  for (;;) {
    u64 wait_t0 = wall_ns();
    const std::function<void(u64)>* fn = nullptr;
    const char* label = "task";
    u64 n = 0;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_work_.wait(lock,
                    [&] { return stop_ || (fn_ != nullptr && generation_ != seen_gen); });
      if (stop_) return;
      seen_gen = generation_;
      fn = fn_;
      label = label_;
      n = batch_n_;
      ++active_;
    }
    h_steal_ns_->record(wall_ns() - wait_t0);
    drain(*fn, n, label);
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_;
    }
    cv_done_.notify_all();
  }
}

void ThreadPool::for_each_index(u64 n, const std::function<void(u64)>& fn,
                                const char* label) {
  if (n == 0) return;
  // Chaos bookkeeping happens on the caller thread, in program order, so
  // batch salts (and therefore every stream salt derived inside tasks) are
  // identical at any job count.
  bool chaos_on = chaos::active();
  u64 batch_salt = 0;
  std::vector<u64> order;
  if (chaos_on) {
    batch_salt = chaos::next_batch_salt();
    chaos::FaultStream stream = chaos::make_stream(chaos::point_bit(chaos::Point::kTaskOrder));
    if (stream.fire(chaos::Point::kTaskOrder)) {
      order.resize(n);
      std::iota(order.begin(), order.end(), 0);
      Rng rng(stream.draw(chaos::Point::kTaskOrder));
      rng.shuffle(order);
    }
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    CRP_CHECK(fn_ == nullptr);  // one batch at a time
    chaos_on_ = chaos_on;
    chaos_batch_salt_ = batch_salt;
    chaos_order_ = std::move(order);
    prof_batch_ctx_ = obs::Profiler::context();
    fn_ = &fn;
    label_ = label;
    batch_n_ = n;
    next_.store(0, std::memory_order_relaxed);
    done_.store(0, std::memory_order_relaxed);
    ++generation_;
  }
  cv_work_.notify_all();
  drain(fn, n, label);  // the caller is a worker too
  {
    std::unique_lock<std::mutex> lock(mu_);
    // Wait for completion AND for every worker to leave drain(): a worker
    // looping back for one more claim must not see the next batch's cursor.
    cv_done_.wait(lock, [&] {
      return done_.load(std::memory_order_acquire) >= n && active_ == 0;
    });
    fn_ = nullptr;
  }
}

}  // namespace crp::exec
