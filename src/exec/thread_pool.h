// crp::exec — deterministic work scheduling for the analysis funnels.
//
// The paper's two big costs are embarrassingly parallel over independent
// inputs: the per-filter symbolic-execution + SAT funnel (6,745 handlers →
// 808 AV-capable filters, Tables II/III) and the per-API fuzzing funnel
// (20,672 → 400, §V-B). This module shards such sweeps across a fixed-size
// worker pool while keeping every funnel number bit-identical to the serial
// run.
//
// Determinism contract (see DESIGN.md §"Parallel execution"):
//   * results are merged in *input order* — parallel_map(items, fn) returns
//     exactly what the serial loop would have produced;
//   * anything random inside a task derives its seed from the task *index*
//     (task_seed), never from thread identity or scheduling order;
//   * tasks share nothing mutable: per-task state (symex::Ctx, scratch
//     os::Kernel, ...) is created inside the task. Shared observability
//     sinks (obs::Registry counters, obs::Journal) are thread-safe.
//
// Worker-count resolution: an explicit `jobs` argument wins, then the
// CRP_JOBS environment variable, then std::thread::hardware_concurrency().
// The calling thread participates in every batch, so a pool of 1 spawns no
// threads at all and degenerates to the plain serial loop.
#pragma once

#include <atomic>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

#include "obs/prof.h"
#include "util/common.h"

namespace crp::obs {
class Counter;
class Histogram;
}  // namespace crp::obs

namespace crp::exec {

/// Resolve a worker count: `jobs` > 0 wins; else a positive integer in
/// $CRP_JOBS; else std::thread::hardware_concurrency() (min 1).
int resolve_jobs(int jobs = 0);

/// Deterministic per-task seed: a splitmix64 mix of `base_seed` and the task
/// index. Never derive task randomness from thread identity — two runs with
/// different job counts must draw identical streams for task `index`.
u64 task_seed(u64 base_seed, u64 index);

/// Fixed-size worker pool executing one index-sharded batch at a time.
///
/// Publishes `analysis.pool.tasks` (tasks executed) and
/// `analysis.pool.steal_ns` (per-wake time a worker spent waiting to acquire
/// work) to the global registry, plus one journal span per task.
class ThreadPool {
 public:
  /// `jobs` as for resolve_jobs(). The pool spawns jobs-1 worker threads;
  /// the caller of for_each_index is the remaining worker.
  explicit ThreadPool(int jobs = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total workers, caller included (>= 1).
  int jobs() const { return jobs_; }

  /// Run fn(i) for every i in [0, n). Tasks are claimed from a shared atomic
  /// index; the call returns when all n tasks completed. `label` names the
  /// per-task journal spans. One batch at a time per pool.
  void for_each_index(u64 n, const std::function<void(u64)>& fn,
                      const char* label = "task");

 private:
  void worker_loop();
  /// Claim and run tasks of the current batch until the index is exhausted.
  void drain(const std::function<void(u64)>& fn, u64 n, const char* label);

  int jobs_;
  std::vector<std::thread> workers_;

  // Chaos state of the current batch (set under mu_ in for_each_index
  // before workers wake; read by drain). When fault injection is off,
  // chaos_on_ stays false and drain pays a single branch per task.
  bool chaos_on_ = false;
  u64 chaos_batch_salt_ = 0;
  // Profiler context of the batch issuer, re-entered around every task so
  // samples taken inside worker threads inherit the issuing stage/target
  // (VerifyStage's machines must not sample as context-less).
  obs::ProfContext prof_batch_ctx_{};
  // Non-empty: claim i executes task chaos_order_[i] (a seeded permutation;
  // merged output must be unchanged — the kTaskOrder invariant).
  std::vector<u64> chaos_order_;

  std::mutex mu_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  // Current batch (guarded by mu_; next_/done_ are the hot task cursors).
  const std::function<void(u64)>* fn_ = nullptr;
  const char* label_ = "task";
  u64 batch_n_ = 0;
  u64 generation_ = 0;
  // Workers currently inside drain() (guarded by mu_). for_each_index waits
  // for this to hit zero before releasing the batch: a worker looping back
  // to claim another index must never observe the *next* batch's cursor.
  int active_ = 0;
  bool stop_ = false;
  std::atomic<u64> next_{0};
  std::atomic<u64> done_{0};

  obs::Counter* c_tasks_;
  obs::Histogram* h_steal_ns_;
};

/// Apply `fn(index, item)` to every item, sharded across the pool, and
/// return the results in input order. The output is identical for any job
/// count (the determinism contract above).
template <typename T, typename Fn>
auto parallel_map(ThreadPool& pool, const std::vector<T>& items, Fn&& fn,
                  const char* label = "task") {
  using R = std::invoke_result_t<Fn&, size_t, const T&>;
  static_assert(std::is_default_constructible_v<R>,
                "parallel_map results are materialized into a pre-sized vector");
  std::vector<R> out(items.size());
  pool.for_each_index(
      items.size(),
      [&](u64 i) { out[static_cast<size_t>(i)] = fn(static_cast<size_t>(i), items[static_cast<size_t>(i)]); },
      label);
  return out;
}

}  // namespace crp::exec
