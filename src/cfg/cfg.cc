#include "cfg/cfg.h"

#include <algorithm>
#include <deque>

namespace crp::cfg {

const char* terminator_name(Terminator t) {
  switch (t) {
    case Terminator::kFallthrough: return "fallthrough";
    case Terminator::kJump: return "jump";
    case Terminator::kBranch: return "branch";
    case Terminator::kIndirect: return "indirect";
    case Terminator::kCall: return "call";
    case Terminator::kReturn: return "return";
    case Terminator::kHalt: return "halt";
    case Terminator::kTrap: return "trap";
    case Terminator::kInvalid: return "invalid";
  }
  return "?";
}

Cfg Cfg::build(const isa::Image& image, const std::vector<u64>& roots) {
  Cfg out;
  int cs = image.code_section();
  if (cs < 0) return out;
  const auto& code = image.sections[static_cast<size_t>(cs)].bytes;
  u64 code_size = code.size();

  auto decode_at = [&](u64 off) -> std::optional<isa::Instr> {
    if (off + isa::kInstrBytes > code_size || off % isa::kInstrBytes != 0)
      return std::nullopt;
    return isa::decode(std::span<const u8>(code.data() + off, isa::kInstrBytes));
  };

  // Pass 1: recursive traversal; record instructions + leaders.
  std::set<u64> leaders;
  std::deque<u64> work;
  for (u64 r : roots) {
    if (r < code_size && r % isa::kInstrBytes == 0) {
      work.push_back(r);
      leaders.insert(r);
      out.entries_.insert(r);
    }
  }

  std::set<u64> visited;
  while (!work.empty()) {
    u64 off = work.front();
    work.pop_front();
    while (off < code_size && !visited.contains(off)) {
      visited.insert(off);
      std::optional<isa::Instr> ins = decode_at(off);
      if (!ins.has_value()) break;
      out.instrs_[off] = *ins;
      u64 next = off + isa::kInstrBytes;
      i64 imm = ins->imm;
      auto enqueue = [&](u64 target) {
        if (target < code_size && target % isa::kInstrBytes == 0 &&
            !visited.contains(target)) {
          work.push_back(target);
        }
        leaders.insert(target);
      };
      switch (ins->op) {
        case isa::Op::kJmp:
          enqueue(next + static_cast<u64>(imm));
          off = code_size;  // end this walk
          break;
        case isa::Op::kJcc:
          enqueue(next + static_cast<u64>(imm));
          leaders.insert(next);
          off = next;
          break;
        case isa::Op::kCall: {
          u64 target = next + static_cast<u64>(imm);
          enqueue(target);
          out.entries_.insert(target);
          leaders.insert(next);
          off = next;
          break;
        }
        case isa::Op::kRet:
        case isa::Op::kHalt:
        case isa::Op::kJmpR:
          off = code_size;  // end of walk (indirect targets unknown)
          break;
        default:
          off = next;
          break;
      }
    }
  }

  // Pass 2: slice visited instruction runs into basic blocks at leaders.
  std::vector<u64> offs;
  offs.reserve(out.instrs_.size());
  for (const auto& [o, _] : out.instrs_) offs.push_back(o);
  std::sort(offs.begin(), offs.end());

  size_t i = 0;
  while (i < offs.size()) {
    BasicBlock bb;
    bb.begin = offs[i];
    for (;;) {
      u64 off = offs[i];
      const isa::Instr& ins = out.instrs_.at(off);
      ++bb.instr_count;
      if (isa::reads_memory(ins.op)) ++bb.loads;
      if (isa::writes_memory(ins.op)) ++bb.stores;
      u64 next = off + isa::kInstrBytes;
      i64 imm = ins.imm;

      bool block_ends = true;
      switch (ins.op) {
        case isa::Op::kJmp:
          bb.term = Terminator::kJump;
          bb.succs.push_back(next + static_cast<u64>(imm));
          break;
        case isa::Op::kJcc:
          bb.term = Terminator::kBranch;
          bb.succs.push_back(next + static_cast<u64>(imm));
          bb.succs.push_back(next);
          break;
        case isa::Op::kJmpR:
          bb.term = Terminator::kIndirect;
          break;
        case isa::Op::kCall:
          bb.term = Terminator::kCall;
          bb.call_targets.push_back(next + static_cast<u64>(imm));
          bb.succs.push_back(next);
          break;
        case isa::Op::kCallR:
        case isa::Op::kCallImp:
          bb.term = Terminator::kCall;
          bb.succs.push_back(next);
          break;
        case isa::Op::kRet:
          bb.term = Terminator::kReturn;
          break;
        case isa::Op::kHalt:
          bb.term = Terminator::kHalt;
          break;
        case isa::Op::kSyscall:
        case isa::Op::kApiCall:
          bb.term = Terminator::kTrap;
          bb.succs.push_back(next);
          break;
        default:
          block_ends = false;
          break;
      }

      ++i;
      bool next_is_leader =
          i < offs.size() && (offs[i] != next || leaders.contains(offs[i]));
      if (block_ends || i >= offs.size() || next_is_leader) {
        bb.end = next;
        if (!block_ends) {
          bb.term = Terminator::kFallthrough;
          if (i < offs.size() && offs[i] == next) bb.succs.push_back(next);
        }
        break;
      }
    }
    out.blocks_[bb.begin] = std::move(bb);
  }
  return out;
}

Cfg Cfg::build_all(const isa::Image& image) {
  std::vector<u64> roots;
  if (!image.is_dll) roots.push_back(image.entry);
  for (const auto& e : image.exports) roots.push_back(e.offset);
  for (const auto& sc : image.scopes) {
    roots.push_back(sc.begin);
    roots.push_back(sc.handler);
    if (sc.filter != isa::kFilterCatchAll) roots.push_back(sc.filter);
  }
  return build(image, roots);
}

const BasicBlock* Cfg::block_at(u64 off) const {
  auto it = blocks_.upper_bound(off);
  if (it == blocks_.begin()) return nullptr;
  --it;
  return it->second.contains(off) ? &it->second : nullptr;
}

std::vector<std::pair<u64, isa::Instr>> Cfg::instructions_in(u64 begin, u64 end) const {
  std::vector<std::pair<u64, isa::Instr>> out;
  for (auto it = instrs_.lower_bound(begin); it != instrs_.end() && it->first < end; ++it)
    out.emplace_back(it->first, it->second);
  return out;
}

bool Cfg::derefs_in(u64 begin, u64 end) const {
  for (const auto& [off, ins] : instructions_in(begin, end))
    if (ins.op == isa::Op::kLoad || ins.op == isa::Op::kStore) return true;
  return false;
}

}  // namespace crp::cfg
