// Static control-flow analysis over MVX images: recursive-traversal
// disassembly into basic blocks, function discovery from exports / scope
// tables / call targets, and per-region instruction queries.
//
// This is the static-analysis substrate (the IDA/Dyninst analog) that the
// guard audit builds on: the paper observes that catch-all handlers over
// code with "memory dereferences outside of the protected code area ...
// usually indicate a handler which should not cover access violations"
// (§VII-B) — deciding that requires exactly the queries this module
// provides.
#pragma once

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "isa/image.h"
#include "isa/isa.h"

namespace crp::cfg {

/// How a basic block ends.
enum class Terminator : u8 {
  kFallthrough = 0,  // split by an incoming edge
  kJump,
  kBranch,      // conditional: two successors
  kIndirect,    // jmpr: unknown successors
  kCall,        // falls through after the call
  kReturn,
  kHalt,
  kTrap,        // syscall/apicall (falls through)
  kInvalid,     // undecodable instruction
};

const char* terminator_name(Terminator t);

struct BasicBlock {
  u64 begin = 0;  // code-section offset
  u64 end = 0;    // exclusive
  Terminator term = Terminator::kFallthrough;
  std::vector<u64> succs;       // static successors (code offsets)
  std::vector<u64> call_targets;  // direct call targets seen in the block
  int loads = 0;    // memory-reading instructions (incl. pop/ret)
  int stores = 0;   // memory-writing instructions (incl. push/call)
  size_t instr_count = 0;

  bool contains(u64 off) const { return off >= begin && off < end; }
};

/// CFG for one image's code section.
class Cfg {
 public:
  /// Disassemble reachable code from `roots` (code offsets). Invalid or
  /// out-of-range roots are ignored.
  static Cfg build(const isa::Image& image, const std::vector<u64>& roots);

  /// Convenience: roots = entry point + exports + scope filters/handlers +
  /// guarded-region begins.
  static Cfg build_all(const isa::Image& image);

  const std::map<u64, BasicBlock>& blocks() const { return blocks_; }

  /// Block containing code offset `off`, or nullptr.
  const BasicBlock* block_at(u64 off) const;

  /// All decoded instructions in [begin, end), in address order. Offsets
  /// that never decoded (unreachable) are skipped.
  std::vector<std::pair<u64, isa::Instr>> instructions_in(u64 begin, u64 end) const;

  /// Does [begin, end) contain at least one explicit memory dereference
  /// (load/store — stack push/pop and call/ret do not count: they cannot
  /// fault on attacker-chosen addresses)?
  bool derefs_in(u64 begin, u64 end) const;

  /// Function entries discovered (roots + direct call targets).
  const std::set<u64>& function_entries() const { return entries_; }

  size_t instruction_count() const { return instrs_.size(); }

 private:
  std::map<u64, BasicBlock> blocks_;
  std::map<u64, isa::Instr> instrs_;  // offset -> decoded instruction
  std::set<u64> entries_;
};

}  // namespace crp::cfg
