// Byte-granular taint shadow state, shared by both execution engines.
//
// The propagation rules of §IV-A live here — ONE implementation — so the
// interpreter path (taint::TaintEngine::on_exec forwarding each ExecEvent)
// and the block-translation fast path (Machine executing a micro-op trace
// with the shadow registered via Machine::set_taint_shadow) are identical by
// construction: same switch, same shadow structures, same ordering.
//
// Shadow state:
//   * memory  — one 64-bit color mask per guest byte (sparse, per page),
//     with a one-entry page cache (guest accesses are strongly page-local);
//   * registers — one mask per register;
//   * provenance — per register, the guest address an 8-byte value was last
//     loaded from (what lets the monitor corrupt a pointer's memory home).
//
// Counters are batched: `propagated` and the tainted-byte high-water mark
// accumulate locally and reach the obs registry via publish() (called from
// Machine::publish_instret and on engine detach), so the hot loop never
// touches an atomic. Published totals equal the old per-instruction
// increments bit-for-bit.
#pragma once

#include <unordered_map>

#include "isa/isa.h"
#include "obs/obs.h"
#include "util/common.h"

namespace crp::vm {

using TaintMask = u64;

/// Mask bit for a connection color (0 = clean).
constexpr TaintMask taint_mask_for_color(u32 color) {
  return color == 0 ? 0 : (1ull << ((color - 1) % 64));
}

class TaintShadow {
 public:
  static constexpr gva_t kNoProv = ~0ull;
  static constexpr u64 kShadowPage = 4096;

  TaintShadow() {
    for (auto& p : reg_prov_) p = kNoProv;
  }

  /// Wire the registry metrics this shadow publishes into (optional; tests
  /// may run without).
  void set_metrics(obs::Counter* propagated, obs::Gauge* tainted_hwm) {
    c_propagated_ = propagated;
    g_tainted_hwm_ = tainted_hwm;
  }

  // --- queries ---------------------------------------------------------------

  TaintMask reg_taint(isa::Reg r) const { return reg_mask_[static_cast<u8>(r)]; }
  gva_t reg_prov(isa::Reg r) const { return reg_prov_[static_cast<u8>(r)]; }

  /// OR of byte masks over [addr, addr+len).
  TaintMask mem_taint(gva_t addr, u64 len) const {
    // Fast path: the span sits inside one shadow page (the overwhelmingly
    // common case for 1..8-byte accesses) — one lookup, not one per byte.
    if (len != 0 && (addr % kShadowPage) + len <= kShadowPage) {
      const ShadowPage* pg = page_at(addr / kShadowPage);
      if (pg == nullptr) return 0;
      TaintMask m = 0;
      u64 off = addr % kShadowPage;
      for (u64 i = 0; i < len; ++i) m |= pg->bytes[off + i];
      return m;
    }
    TaintMask m = 0;
    for (u64 i = 0; i < len; ++i) {
      const ShadowPage* pg = page_at((addr + i) / kShadowPage);
      if (pg != nullptr) m |= pg->bytes[(addr + i) % kShadowPage];
    }
    return m;
  }

  u64 propagated_instrs() const { return propagated_; }
  u64 tainted_bytes() const { return tainted_bytes_; }
  bool enabled() const { return enabled_; }
  void set_enabled(bool on) { enabled_ = on; }

  // --- mutation --------------------------------------------------------------

  void set_reg(isa::Reg r, TaintMask m, gva_t prov = kNoProv) {
    reg_mask_[static_cast<u8>(r)] = m;
    reg_prov_[static_cast<u8>(r)] = prov;
  }

  /// Paint [addr, addr+len) with `mask` (0 clears), maintaining the census
  /// and the high-water mark the same way the bulk sources do.
  void taint_mem(gva_t addr, u64 len, TaintMask mask) {
    for (u64 i = 0; i < len; ++i) write_shadow(addr + i, mask);
    note_census();
  }

  void clear_mem(gva_t addr, u64 len) {
    for (u64 i = 0; i < len; ++i) write_shadow(addr + i, 0);
  }

  void clear_all() {
    pages_.clear();
    cached_page_no_ = ~0ull;
    cached_page_ = nullptr;
    tainted_bytes_ = 0;
    for (auto& m : reg_mask_) m = 0;
    for (auto& p : reg_prov_) p = kNoProv;
  }

  /// Shadow write tracking the tainted-byte census on 0<->nonzero flips.
  void write_shadow(gva_t addr, TaintMask m) {
    u64 page_no = addr / kShadowPage;
    if (m == 0) {
      ShadowPage* pg = page_at_mut(page_no, /*create=*/false);
      if (pg == nullptr) return;
      TaintMask& s = pg->bytes[addr % kShadowPage];
      if (s != 0) --tainted_bytes_;
      s = 0;
      return;
    }
    ShadowPage* pg = page_at_mut(page_no, /*create=*/true);
    TaintMask& s = pg->bytes[addr % kShadowPage];
    if (s == 0) ++tainted_bytes_;
    s = m;
  }

  /// Record the current census into the local high-water mark (the batched
  /// analog of publishing the gauge after every bulk update).
  void note_census() {
    if (tainted_bytes_ > hwm_) hwm_ = tainted_bytes_;
  }

  // --- propagation (one retired, non-faulted instruction) ---------------------
  //
  // `mem_addr`/`mem_size` carry exactly what the interpreter's ExecEvent
  // would: the resolved effective address and width for load/store, the
  // stack slot for push/pop/call. Ignored for other ops.

  void propagate(isa::Op op, isa::Reg ra, isa::Reg rb, u8 w, gva_t mem_addr, u8 mem_size) {
    using isa::Op;
    ++propagated_;
    TaintMask ta = reg_taint(ra);
    TaintMask tb = reg_taint(rb);

    switch (op) {
      case Op::kMovRR:
        set_reg(ra, tb, reg_prov_[static_cast<u8>(rb)]);
        break;
      case Op::kMovRI:
      case Op::kLeaPc:
        set_reg(ra, 0);
        break;
      case Op::kLea:
        // Address arithmetic: value derives from rb, loses load provenance.
        set_reg(ra, tb);
        break;
      case Op::kLoad:
        set_reg(ra, mem_taint(mem_addr, mem_size), w == 8 ? mem_addr : kNoProv);
        break;
      case Op::kPop:
        set_reg(ra, mem_taint(mem_addr, 8), mem_addr);
        break;
      case Op::kStore:
        taint_mem(mem_addr, mem_size, tb);
        break;
      case Op::kPush:
        taint_mem(mem_addr, 8, ta);
        break;
      case Op::kCall:
      case Op::kCallR:
      case Op::kCallImp:
        taint_mem(mem_addr, 8, 0);  // pushed return address is clean
        break;
      case Op::kXorRR:
        if (ra == rb) {
          set_reg(ra, 0);  // zeroing idiom
          break;
        }
        set_reg(ra, ta | tb);
        break;
      case Op::kAddRR:
      case Op::kSubRR:
      case Op::kMulRR:
      case Op::kDivRR:
      case Op::kModRR:
      case Op::kAndRR:
      case Op::kOrRR:
      case Op::kShlRR:
      case Op::kShrRR:
        set_reg(ra, ta | tb);
        break;
      case Op::kAddRI:
      case Op::kSubRI:
      case Op::kMulRI:
      case Op::kAndRI:
      case Op::kOrRI:
      case Op::kXorRI:
      case Op::kShlRI:
      case Op::kShrRI:
      case Op::kSarRI:
      case Op::kNot:
      case Op::kNeg:
        set_reg(ra, ta);
        break;
      default:
        break;  // control flow, cmp/test, nop, traps: no register data writes
    }
  }

  /// Flush batched counters to the registry. Totals match the unbatched
  /// per-instruction publishing bit-for-bit.
  void publish() {
    if (c_propagated_ != nullptr && propagated_ != propagated_published_) {
      c_propagated_->inc(propagated_ - propagated_published_);
      propagated_published_ = propagated_;
    }
    if (g_tainted_hwm_ != nullptr) {
      note_census();
      g_tainted_hwm_->update_max(static_cast<i64>(hwm_));
    }
  }

 private:
  struct ShadowPage {
    TaintMask bytes[kShadowPage] = {};
  };

  const ShadowPage* page_at(u64 page_no) const {
    if (page_no == cached_page_no_) return cached_page_;
    auto it = pages_.find(page_no);
    const ShadowPage* pg = it == pages_.end() ? nullptr : &it->second;
    cached_page_no_ = page_no;
    cached_page_ = pg;
    return pg;
  }

  ShadowPage* page_at_mut(u64 page_no, bool create) {
    if (page_no == cached_page_no_ && cached_page_ != nullptr)
      return const_cast<ShadowPage*>(cached_page_);
    auto it = pages_.find(page_no);
    if (it == pages_.end()) {
      if (!create) {
        cached_page_no_ = page_no;
        cached_page_ = nullptr;
        return nullptr;
      }
      it = pages_.emplace(page_no, ShadowPage{}).first;
    }
    cached_page_no_ = page_no;
    cached_page_ = &it->second;
    return &it->second;
  }

  bool enabled_ = true;
  TaintMask reg_mask_[isa::kNumRegs] = {};
  gva_t reg_prov_[isa::kNumRegs];
  std::unordered_map<u64, ShadowPage> pages_;
  // One-entry lookup cache; unordered_map nodes are pointer-stable, so the
  // cached pointer survives unrelated inserts. clear_all() resets it.
  mutable u64 cached_page_no_ = ~0ull;
  mutable const ShadowPage* cached_page_ = nullptr;
  u64 propagated_ = 0;
  u64 propagated_published_ = 0;
  u64 tainted_bytes_ = 0;
  u64 hwm_ = 0;
  obs::Counter* c_propagated_ = nullptr;
  obs::Gauge* g_tainted_hwm_ = nullptr;
};

}  // namespace crp::vm
