#include "vm/machine.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <map>

#include "cfg/cfg.h"
#include "obs/obs.h"
#include "obs/prof.h"
#include "util/log.h"
#include "vm/shadow.h"

namespace crp::vm {

namespace {
constexpr u64 kMaxFilterSteps = 100000;
constexpr int kMaxDispatchDepth = 4;
// Chaos: injection opportunities are offered every this many steps; the
// plan's rate then decides whether one fires. Small enough that a
// rate-reduced test plan hits within a typical workload run.
constexpr u64 kChaosVmInterval = 256;

bool is_dispatchable_signal(int signo) { return signo == 7 || signo == 8 || signo == 11; }

int signo_for(ExcCode code) {
  switch (code) {
    case ExcCode::kAccessViolation: return 11;  // SIGSEGV
    case ExcCode::kIntDivideByZero: return 8;   // SIGFPE
    case ExcCode::kIllegalInstruction: return 4;  // SIGILL (no handler support)
    case ExcCode::kSingleStep: return 5;          // SIGTRAP (no handler support)
    default: return 11;
  }
}
}  // namespace

const char* exc_name(ExcCode c) {
  switch (c) {
    case ExcCode::kAccessViolation: return "ACCESS_VIOLATION";
    case ExcCode::kIllegalInstruction: return "ILLEGAL_INSTRUCTION";
    case ExcCode::kIntDivideByZero: return "INT_DIVIDE_BY_ZERO";
    case ExcCode::kStackOverflow: return "STACK_OVERFLOW";
    case ExcCode::kGuardPage: return "GUARD_PAGE";
    case ExcCode::kSingleStep: return "SINGLE_STEP";
    case ExcCode::kSoftware: return "SOFTWARE";
  }
  return "?";
}

const char* dispatch_outcome_name(DispatchOutcome o) {
  switch (o) {
    case DispatchOutcome::kUnhandled: return "unhandled";
    case DispatchOutcome::kSehHandler: return "seh-handler";
    case DispatchOutcome::kSehContinue: return "seh-continue";
    case DispatchOutcome::kVehContinue: return "veh-continue";
    case DispatchOutcome::kSignalHandler: return "signal-handler";
    case DispatchOutcome::kSwallowed: return "swallowed";
  }
  return "?";
}

Machine::Machine(Personality personality, u64 aslr_seed, mem::AslrConfig aslr)
    : personality_(personality), layout_(aslr, aslr_seed) {
  obs::Registry& reg = obs::Registry::global();
  c_instret_ = &reg.counter("vm.instr_retired");
  c_exceptions_ = &reg.counter("vm.exceptions");
  c_filter_evals_ = &reg.counter("vm.filter_evals");
  c_mapped_only_kills_ = &reg.counter("vm.mapped_only_av_kills");
  for (size_t o = 0; o < kNumDispatchOutcomes; ++o)
    c_dispatch_[o] = &reg.counter(std::string("vm.dispatch.") +
                                  dispatch_outcome_name(static_cast<DispatchOutcome>(o)));
  chaos_ = chaos::make_stream(chaos::kVmPoints);
  if (chaos_.armed()) chaos_countdown_ = kChaosVmInterval;
  prof_interval_ = obs::Profiler::global().interval();
  if (prof_interval_ != 0) prof_countdown_ = prof_interval_;
  const char* jit = std::getenv("CRP_JIT");
  jit_on_ = jit == nullptr || jit[0] != '0';
  mem_.set_write_watcher([this](gva_t page_base) { jit_note_write(page_base); });
}

Machine::~Machine() { publish_instret(); }

/// Block attribution cache for one loaded module: a one-time cfg::Cfg
/// disassembly plus the interned name id per block leader already seen.
struct Machine::ProfModCache {
  cfg::Cfg cfg;
  std::map<u64, u32> block_ids;  // block-leader code offset -> interned id
};

gva_t Machine::prof_block_end(gva_t pc) const {
  for (size_t mi = 0; mi < modules_.size(); ++mi) {
    if (!modules_[mi].contains_code(pc)) continue;
    if (mi >= prof_mods_.size() || prof_mods_[mi] == nullptr) return 0;
    const cfg::BasicBlock* bb = prof_mods_[mi]->cfg.block_at(pc - modules_[mi].code_base());
    return bb != nullptr ? modules_[mi].code_base() + bb->end : 0;
  }
  return 0;
}

void Machine::prof_sample(gva_t pc, u16 extra_flags) {
  obs::Profiler& prof = obs::Profiler::global();
  u32 block = 0;
  size_t mi = modules_.size();
  for (size_t i = 0; i < modules_.size(); ++i) {
    if (modules_[i].contains_code(pc)) {
      mi = i;
      break;
    }
  }
  if (mi < modules_.size()) {
    const LoadedModule& mod = modules_[mi];
    if (prof_mods_.size() < modules_.size()) prof_mods_.resize(modules_.size());
    std::unique_ptr<ProfModCache>& pm = prof_mods_[mi];
    if (pm == nullptr)
      pm = std::make_unique<ProfModCache>(
          ProfModCache{cfg::Cfg::build_all(*mod.image), {}});
    u64 off = pc - mod.code_base();
    const cfg::BasicBlock* bb = pm->cfg.block_at(off);
    // Code the static disassembly never reached (e.g. computed targets)
    // falls back to the raw offset — still a stable, meaningful name.
    u64 leader = bb != nullptr ? bb->begin : off;
    auto it = pm->block_ids.find(leader);
    if (it == pm->block_ids.end()) {
      u32 id = prof.intern(strf("%s+0x%llx", mod.image->name.c_str(),
                                static_cast<unsigned long long>(leader)));
      it = pm->block_ids.emplace(leader, id).first;
    }
    block = it->second;
  } else {
    if (prof_anon_block_ == 0) prof_anon_block_ = prof.intern("[anon]");
    block = prof_anon_block_;
  }
  const obs::ProfContext& ctx = obs::Profiler::context();
  obs::ProfSample s;
  s.vcount = instret_;
  s.pc = pc;
  s.block = block;
  s.stage = ctx.stage;
  s.target = ctx.target;
  s.syscall = ctx.syscall;
  s.flags = static_cast<u16>(ctx.flags | extra_flags);
  prof.record(s);
}

void Machine::publish_instret() {
  u64 delta = instret_ - instret_published_;
  instret_published_ = instret_;
  // Counter::inc drops the delta when recording is disabled, which gives the
  // same semantics as an unbatched per-step inc (instructions retired while
  // observability is off are not counted).
  if (delta != 0) c_instret_->inc(delta);
  // The taint shadow batches its counters the same way; flush on the same
  // cadence so live telemetry sees both advance together.
  if (taint_shadow_ != nullptr) taint_shadow_->publish();
}

size_t Machine::load_image(std::shared_ptr<const isa::Image> image) {
  CRP_CHECK(image != nullptr);
  LoadedModule mod;
  mod.image = image;
  gva_t base = layout_.place(mem::RegionKind::kImage, image->mapped_size(), image->name);
  mod.base = base;

  gva_t cursor = base;
  for (const auto& sec : image->sections) {
    u64 vsize = std::max<u64>(sec.vsize, sec.bytes.size());
    u64 map_size = align_up(std::max<u64>(vsize, 1), mem::kPageSize);
    u8 perms = mem::kPermR;
    if (sec.writable) perms |= mem::kPermW;
    if (sec.executable) perms |= mem::kPermX;
    CRP_CHECK(mem_.map(cursor, map_size, perms));
    if (!sec.bytes.empty()) CRP_CHECK(mem_.poke(cursor, sec.bytes));
    mod.section_base.push_back(cursor);
    cursor += map_size;
  }

  // Resolve imports against modules loaded so far (including self-exports).
  mod.import_addr.resize(image->imports.size(), 0);
  for (size_t i = 0; i < image->imports.size(); ++i) {
    const auto& imp = image->imports[i];
    for (const auto& other : modules_) {
      if (other.image->name != imp.module) continue;
      gva_t a = other.export_addr(imp.symbol);
      if (a != 0) {
        mod.import_addr[i] = a;
        break;
      }
    }
  }
  modules_.push_back(std::move(mod));
  CRP_DEBUG("vm", "loaded %s at 0x%llx", image->name.c_str(),
            static_cast<unsigned long long>(base));
  return modules_.size() - 1;
}

const LoadedModule* Machine::module_named(const std::string& name) const {
  for (const auto& m : modules_)
    if (m.image->name == name) return &m;
  return nullptr;
}

const LoadedModule* Machine::module_at(gva_t pc) const {
  for (const auto& m : modules_)
    if (m.contains_code(pc)) return &m;
  return nullptr;
}

gva_t Machine::resolve(const std::string& module, const std::string& symbol) const {
  const LoadedModule* m = module_named(module);
  if (m == nullptr) return 0;
  gva_t a = m->export_addr(symbol);
  if (a == 0) a = m->symbol_addr(symbol);
  return a;
}

void Machine::add_veh(gva_t handler) { veh_.push_back(handler); }

void Machine::remove_veh(gva_t handler) {
  veh_.erase(std::remove(veh_.begin(), veh_.end(), handler), veh_.end());
}

void Machine::set_signal_handler(int signo, gva_t handler) {
  CRP_CHECK(signo >= 0 && signo < 32);
  sig_handlers_[signo] = handler;
}

gva_t Machine::signal_handler(int signo) const {
  return (signo >= 0 && signo < 32) ? sig_handlers_[signo] : 0;
}

void Machine::add_observer(ExecObserver* obs) {
  observers_.push_back(obs);
  recompute_exec_mode();
}

void Machine::remove_observer(ExecObserver* obs) {
  observers_.erase(std::remove(observers_.begin(), observers_.end(), obs), observers_.end());
  recompute_exec_mode();
}

void Machine::notify_exec(const ExecEvent& ev, const Cpu& cpu) {
  for (auto* o : observers_) o->on_exec(ev, cpu);
}
void Machine::notify_exception(const ExceptionRecord& rec, DispatchOutcome outcome) {
  c_dispatch_[static_cast<size_t>(outcome)]->inc();
  for (auto* o : observers_) o->on_exception(rec, outcome);
}
void Machine::notify_filter(gva_t handler, const ExceptionRecord& rec, i64 disp) {
  for (auto* o : observers_) o->on_filter(handler, rec, disp);
}

// --- interpreter -------------------------------------------------------------

Machine::ExecOutcome Machine::execute(Cpu& cpu, const isa::Instr& ins, gva_t pc, ExecEvent& ev) {
  using isa::Op;
  using isa::Reg;
  ExecOutcome out;
  gva_t next = pc + isa::kInstrBytes;
  cpu.pc = next;  // default fallthrough; control flow overrides

  auto fault = [&](ExcCode code, gva_t addr, mem::Access kind) {
    out.ok = false;
    out.exc = {code, pc, addr, kind};
    cpu.pc = pc;  // leave pc at the faulting instruction
  };
  auto mem_fault = [&](const mem::AccessResult& r) {
    fault(ExcCode::kAccessViolation, r.fault_addr, r.kind);
  };
  auto set_cmp_flags = [&](u64 a, u64 b) {
    u64 d = a - b;
    cpu.zf = d == 0;
    cpu.sf = (d >> 63) != 0;
    cpu.cf = a < b;
    cpu.of = (((a ^ b) & (a ^ d)) >> 63) != 0;
  };

  u64& ra = cpu.reg(ins.ra);
  u64 rb = cpu.reg(ins.rb);
  i64 imm = ins.imm;

  switch (ins.op) {
    case Op::kNop: break;
    case Op::kHalt:
      out.trap.kind = StepKind::kHalt;
      break;
    case Op::kMovRR: ra = rb; break;
    case Op::kMovRI: ra = static_cast<u64>(imm); break;
    case Op::kLea: ra = rb + static_cast<u64>(imm); break;
    case Op::kLeaPc: ra = next + static_cast<u64>(imm); break;
    case Op::kLoad: {
      gva_t addr = rb + static_cast<u64>(imm);
      ev.mem_addr = addr;
      ev.mem_size = ins.w;
      u64 v = 0;
      mem::AccessResult r = mem_.read_uint(addr, ins.w, &v);
      if (!r.ok) {
        mem_fault(r);
        break;
      }
      ra = v;
      break;
    }
    case Op::kStore: {
      gva_t addr = ra + static_cast<u64>(imm);
      ev.mem_addr = addr;
      ev.mem_size = ins.w;
      ev.mem_write = true;
      mem::AccessResult r = mem_.write_uint(addr, ins.w, rb);
      if (!r.ok) mem_fault(r);
      break;
    }
    case Op::kPush: {
      gva_t addr = cpu.sp() - 8;
      ev.mem_addr = addr;
      ev.mem_size = 8;
      ev.mem_write = true;
      mem::AccessResult r = mem_.write_uint(addr, 8, ra);
      if (!r.ok) {
        mem_fault(r);
        break;
      }
      cpu.sp() = addr;
      break;
    }
    case Op::kPop: {
      gva_t addr = cpu.sp();
      ev.mem_addr = addr;
      ev.mem_size = 8;
      u64 v = 0;
      mem::AccessResult r = mem_.read_uint(addr, 8, &v);
      if (!r.ok) {
        mem_fault(r);
        break;
      }
      ra = v;
      cpu.sp() = addr + 8;
      break;
    }
    case Op::kAddRR: ra += rb; break;
    case Op::kAddRI: ra += static_cast<u64>(imm); break;
    case Op::kSubRR: ra -= rb; break;
    case Op::kSubRI: ra -= static_cast<u64>(imm); break;
    case Op::kMulRR: ra *= rb; break;
    case Op::kMulRI: ra *= static_cast<u64>(imm); break;
    case Op::kDivRR:
      if (rb == 0) {
        fault(ExcCode::kIntDivideByZero, 0, mem::Access::kRead);
        break;
      }
      ra /= rb;
      break;
    case Op::kModRR:
      if (rb == 0) {
        fault(ExcCode::kIntDivideByZero, 0, mem::Access::kRead);
        break;
      }
      ra %= rb;
      break;
    case Op::kAndRR: ra &= rb; break;
    case Op::kAndRI: ra &= static_cast<u64>(imm); break;
    case Op::kOrRR: ra |= rb; break;
    case Op::kOrRI: ra |= static_cast<u64>(imm); break;
    case Op::kXorRR: ra ^= rb; break;
    case Op::kXorRI: ra ^= static_cast<u64>(imm); break;
    case Op::kShlRI: ra <<= (imm & 63); break;
    case Op::kShrRI: ra >>= (imm & 63); break;
    case Op::kSarRI: ra = static_cast<u64>(static_cast<i64>(ra) >> (imm & 63)); break;
    case Op::kShlRR: ra <<= (rb & 63); break;
    case Op::kShrRR: ra >>= (rb & 63); break;
    case Op::kNot: ra = ~ra; break;
    case Op::kNeg: ra = 0 - ra; break;
    case Op::kCmpRR: set_cmp_flags(ra, rb); break;
    case Op::kCmpRI: set_cmp_flags(ra, static_cast<u64>(imm)); break;
    case Op::kTestRR: {
      u64 v = ra & rb;
      cpu.zf = v == 0;
      cpu.sf = (v >> 63) != 0;
      cpu.cf = cpu.of = false;
      break;
    }
    case Op::kTestRI: {
      u64 v = ra & static_cast<u64>(imm);
      cpu.zf = v == 0;
      cpu.sf = (v >> 63) != 0;
      cpu.cf = cpu.of = false;
      break;
    }
    case Op::kJmp:
      cpu.pc = next + static_cast<u64>(imm);
      ev.branch_taken = true;
      ev.branch_target = cpu.pc;
      break;
    case Op::kJmpR:
      cpu.pc = ra;
      ev.branch_taken = true;
      ev.branch_target = cpu.pc;
      break;
    case Op::kJcc:
      if (cpu.eval(static_cast<isa::Cond>(ins.w))) {
        cpu.pc = next + static_cast<u64>(imm);
        ev.branch_taken = true;
        ev.branch_target = cpu.pc;
      }
      break;
    case Op::kCall:
    case Op::kCallR:
    case Op::kCallImp: {
      gva_t target = 0;
      if (ins.op == Op::kCall) {
        target = next + static_cast<u64>(imm);
      } else if (ins.op == Op::kCallR) {
        target = ra;
      } else {
        const LoadedModule* m = module_at(pc);
        size_t idx = static_cast<size_t>(imm);
        if (m == nullptr || idx >= m->import_addr.size() || m->import_addr[idx] == 0) {
          fault(ExcCode::kIllegalInstruction, pc, mem::Access::kExec);
          break;
        }
        target = m->import_addr[idx];
      }
      gva_t slot = cpu.sp() - 8;
      ev.mem_addr = slot;
      ev.mem_size = 8;
      ev.mem_write = true;
      mem::AccessResult r = mem_.write_uint(slot, 8, next);
      if (!r.ok) {
        mem_fault(r);
        break;
      }
      cpu.sp() = slot;
      cpu.pc = target;
      ev.is_call = true;
      ev.branch_taken = true;
      ev.branch_target = target;
      break;
    }
    case Op::kRet: {
      gva_t slot = cpu.sp();
      ev.mem_addr = slot;
      ev.mem_size = 8;
      u64 target = 0;
      mem::AccessResult r = mem_.read_uint(slot, 8, &target);
      if (!r.ok) {
        mem_fault(r);
        break;
      }
      cpu.sp() = slot + 8;
      cpu.pc = target;
      ev.is_ret = true;
      ev.branch_taken = true;
      ev.branch_target = target;
      break;
    }
    case Op::kSyscall:
      if (personality_ != Personality::kLinux) {
        fault(ExcCode::kIllegalInstruction, pc, mem::Access::kExec);
        break;
      }
      out.trap.kind = StepKind::kSyscallTrap;
      break;
    case Op::kApiCall:
      if (personality_ != Personality::kWindows) {
        fault(ExcCode::kIllegalInstruction, pc, mem::Access::kExec);
        break;
      }
      out.trap.kind = StepKind::kApiTrap;
      out.trap.api_id = imm;
      break;
    case Op::kCount:
      fault(ExcCode::kIllegalInstruction, pc, mem::Access::kExec);
      break;
  }
  return out;
}

bool Machine::chaos_step_inject(Cpu& cpu, StepResult* out) {
  ExceptionRecord rec;
  if (chaos_.fire(chaos::Point::kVmAv)) {
    // AV at a poisoned, never-mapped data address; the faulting instruction
    // is whatever the guest was about to execute.
    u64 d = chaos_.draw(chaos::Point::kVmAv);
    rec = {ExcCode::kAccessViolation, cpu.pc,
           0xC4A0'5000'0000'0000ull | (d & 0x0000'00FF'FFFF'F000ull), mem::Access::kRead};
  } else if (chaos_.fire(chaos::Point::kVmSingleStep)) {
    rec = {ExcCode::kSingleStep, cpu.pc, cpu.pc, mem::Access::kExec};
  } else {
    return false;
  }
  if (dispatch_exception(cpu, rec)) {
    *out = {};
    return true;
  }
  out->kind = StepKind::kCrash;
  out->exc = rec;
  return true;
}

StepResult Machine::step(Cpu& cpu) {
  if (chaos_countdown_ != 0 && --chaos_countdown_ == 0) {
    chaos_countdown_ = kChaosVmInterval;
    if (StepResult r; chaos_step_inject(cpu, &r)) return r;
  }
  if (prof_countdown_ != 0 && --prof_countdown_ == 0) {
    prof_countdown_ = prof_interval_;
    prof_sample(cpu.pc, 0);
  }
  gva_t pc = cpu.pc;
  u8 word[isa::kInstrBytes];
  mem::AccessResult fr = mem_.fetch(pc, word);
  ExecEvent ev;
  ev.pc = pc;

  ExceptionRecord exc;
  bool faulted = false;

  if (!fr.ok) {
    exc = {ExcCode::kAccessViolation, pc, fr.fault_addr, mem::Access::kExec};
    faulted = true;
  } else {
    std::optional<isa::Instr> ins = isa::decode(word);
    if (!ins.has_value()) {
      exc = {ExcCode::kIllegalInstruction, pc, pc, mem::Access::kExec};
      faulted = true;
    } else {
      ev.ins = *ins;
      ExecOutcome out = execute(cpu, *ins, pc, ev);
      if (out.ok) {
        ++instret_;
        if ((instret_ & (kObsPublishInterval - 1)) == 0) publish_instret();
        notify_exec(ev, cpu);
        if (out.trap.kind != StepKind::kOk) return out.trap;
        return {};
      }
      exc = out.exc;
      faulted = true;
    }
  }

  CRP_CHECK(faulted);
  ev.faulted = true;
  notify_exec(ev, cpu);
  if (dispatch_exception(cpu, exc)) return {};
  StepResult res;
  res.kind = StepKind::kCrash;
  res.exc = exc;
  return res;
}

StepResult Machine::run(Cpu& cpu, u64 max_steps) {
  u64 spent = 0;
  while (spent < max_steps) {
    BlockResult br = run_block(cpu, max_steps - spent);
    spent += br.steps;
    if (br.res.kind != StepKind::kOk) return br.res;
    CRP_CHECK(br.steps != 0);  // run_block guarantees progress
  }
  return {};
}

// --- exception dispatch -------------------------------------------------------

gva_t Machine::write_exc_record(const Cpu& cpu, const ExceptionRecord& rec) {
  // Place the record below the current stack pointer with a 128-byte red
  // zone, 16-byte aligned — modeling the hardware exception frame push. If
  // the stack itself is not writable, dispatch is impossible (double fault).
  gva_t addr = align_down(cpu.sp() - 128 - kExcRecSize, 16);
  u8 buf[kExcRecSize] = {};
  auto put = [&](u64 off, u64 v) {
    for (int i = 0; i < 8; ++i) buf[off + static_cast<u64>(i)] = static_cast<u8>(v >> (8 * i));
  };
  put(kExcRecCode, static_cast<u64>(rec.code));
  put(kExcRecPc, rec.fault_pc);
  put(kExcRecAddr, rec.fault_addr);
  put(kExcRecAccess, static_cast<u64>(rec.access));
  for (int r = 0; r < isa::kNumRegs; ++r) put(kExcRecRegs + 8 * static_cast<u64>(r), cpu.regs[static_cast<size_t>(r)]);
  put(kExcRecCtxPc, cpu.pc);
  put(kExcRecCtxFlags, cpu.flags_word());
  mem::AccessResult r = mem_.write(addr, buf);
  return r.ok ? addr : 0;
}

void Machine::reload_context(Cpu& cpu, gva_t rec_addr) {
  for (int r = 0; r < isa::kNumRegs; ++r) {
    u64 v = 0;
    if (mem_.peek_u64(rec_addr + kExcRecRegs + 8 * static_cast<u64>(r), &v))
      cpu.regs[static_cast<size_t>(r)] = v;
  }
  u64 pc = 0, flags = 0;
  if (mem_.peek_u64(rec_addr + kExcRecCtxPc, &pc)) cpu.pc = pc;
  if (mem_.peek_u64(rec_addr + kExcRecCtxFlags, &flags)) cpu.set_flags_word(flags);
}

std::optional<i64> Machine::run_filter(const Cpu& at_fault, gva_t entry,
                                       const ExceptionRecord& rec, gva_t rec_addr, int depth) {
  if (depth >= kMaxDispatchDepth) return std::nullopt;
  c_filter_evals_->inc();
  Cpu ctx = at_fault;
  ctx.pc = entry;
  ctx.reg(isa::Reg::R1) = static_cast<u64>(rec.code);
  ctx.reg(isa::Reg::R2) = rec_addr;
  // Private filter stack frame below the record.
  ctx.sp() = align_down(rec_addr - 64, 16);
  // Push the sentinel return address.
  ctx.sp() -= 8;
  if (!mem_.write_uint(ctx.sp(), 8, kSentinelRet).ok) return std::nullopt;

  for (u64 i = 0; i < kMaxFilterSteps; ++i) {
    if (ctx.pc == kSentinelRet) return static_cast<i64>(ctx.reg(isa::Reg::R0));
    if (prof_countdown_ != 0 && --prof_countdown_ == 0) {
      prof_countdown_ = prof_interval_;
      prof_sample(ctx.pc, obs::kProfFilter);
    }
    gva_t pc = ctx.pc;
    u8 word[isa::kInstrBytes];
    mem::AccessResult fr = mem_.fetch(pc, word);
    if (!fr.ok) return std::nullopt;  // nested fault in filter: abandon
    std::optional<isa::Instr> ins = isa::decode(word);
    if (!ins.has_value()) return std::nullopt;
    if (ins->op == isa::Op::kSyscall || ins->op == isa::Op::kApiCall ||
        ins->op == isa::Op::kHalt)
      return std::nullopt;  // filters must be pure w.r.t. the OS
    ExecEvent ev;
    ev.pc = pc;
    ev.ins = *ins;
    ExecOutcome out = execute(ctx, *ins, pc, ev);
    ++instret_;
    if ((instret_ & (kObsPublishInterval - 1)) == 0) publish_instret();
    if (!out.ok) {
      // A fault inside the filter itself: Windows treats this as a nested
      // exception; we conservatively abandon the filter (CONTINUE_SEARCH).
      return std::nullopt;
    }
  }
  return std::nullopt;  // filter ran away
}

bool Machine::dispatch_exception(Cpu& cpu, const ExceptionRecord& rec) {
  ++exc_stats_.total;
  c_exceptions_->inc();
  publish_instret();  // exceptions are rare; keep instr_retired exact here

  // §VII mapped-only policy: AVs touching unmapped memory are always fatal.
  if (mapped_only_av_ && rec.code == ExcCode::kAccessViolation &&
      !mem_.is_mapped(rec.fault_addr)) {
    ++exc_stats_.unhandled;
    c_mapped_only_kills_->inc();
    notify_exception(rec, DispatchOutcome::kUnhandled);
    return false;
  }

  gva_t rec_addr = write_exc_record(cpu, rec);
  if (rec_addr == 0) {
    ++exc_stats_.unhandled;
    notify_exception(rec, DispatchOutcome::kUnhandled);
    return false;
  }

  if (personality_ == Personality::kWindows) {
    // 1. Vectored handlers, registration order.
    for (gva_t h : veh_) {
      std::optional<i64> disp = run_filter(cpu, h, rec, rec_addr, nest_depth_);
      if (!disp.has_value()) continue;
      notify_filter(h, rec, *disp);
      if (*disp == kExceptionContinueExecution) {
        reload_context(cpu, rec_addr);
        ++exc_stats_.handled_veh;
        ++exc_stats_.continued;
        notify_exception(rec, DispatchOutcome::kVehContinue);
        return true;
      }
      // CONTINUE_SEARCH: next handler.
    }
    // 2. Structured scopes: first the faulting frame (innermost scopes
    //    first), then each caller frame by walking the stack for return
    //    addresses — the two-phase SEH walk that lets a fault deep inside
    //    EnterCriticalSection reach jscript9's MUTX::Enter handler (§VI-A).
    //    `frame_sp` is the stack pointer value to restore when a frame's
    //    handler takes over (as if the callee chain had returned).
    struct Frame {
      gva_t pc;
      u64 sp;
    };
    std::vector<Frame> frames;
    frames.push_back({rec.fault_pc, cpu.sp()});
    constexpr int kMaxWalkSlots = 1024;
    for (int i = 0; i < kMaxWalkSlots; ++i) {
      gva_t slot = cpu.sp() + 8 * static_cast<u64>(i);
      u64 v = 0;
      if (!mem_.peek_u64(slot, &v)) break;  // ran off the stack mapping
      if (v < isa::kInstrBytes) continue;
      const LoadedModule* m = module_at(v);
      if (m == nullptr || !m->contains_code(v - isa::kInstrBytes)) continue;
      // A return address points just past a call-family instruction.
      u8 word[isa::kInstrBytes];
      if (!mem_.peek(v - isa::kInstrBytes, word)) continue;
      std::optional<isa::Instr> ins = isa::decode(word);
      if (!ins.has_value() ||
          (ins->op != isa::Op::kCall && ins->op != isa::Op::kCallR &&
           ins->op != isa::Op::kCallImp))
        continue;
      frames.push_back({v - isa::kInstrBytes, slot + 8});
    }

    for (const Frame& frame : frames) {
      const LoadedModule* mod = module_at(frame.pc);
      if (mod == nullptr) continue;
      for (const isa::ScopeEntry* sc : mod->scopes_at(frame.pc)) {
        i64 disp;
        if (sc->filter == isa::kFilterCatchAll) {
          disp = kExceptionExecuteHandler;
          notify_filter(isa::kFilterCatchAll, rec, disp);
        } else {
          std::optional<i64> d =
              run_filter(cpu, mod->code_addr(sc->filter), rec, rec_addr, nest_depth_);
          if (!d.has_value()) continue;
          disp = *d;
          notify_filter(mod->code_addr(sc->filter), rec, disp);
        }
        if (disp == kExceptionExecuteHandler) {
          // Unwind to the handler's frame: resume at the __except block
          // with the exception code in R0 and SP as if the callee chain
          // below this frame had returned.
          cpu.pc = mod->code_addr(sc->handler);
          cpu.sp() = frame.sp;
          cpu.reg(isa::Reg::R0) = static_cast<u64>(rec.code);
          ++exc_stats_.handled_seh;
          notify_exception(rec, DispatchOutcome::kSehHandler);
          return true;
        }
        if (disp == kExceptionContinueExecution) {
          reload_context(cpu, rec_addr);
          ++exc_stats_.handled_seh;
          ++exc_stats_.continued;
          notify_exception(rec, DispatchOutcome::kSehContinue);
          return true;
        }
        // CONTINUE_SEARCH: next scope / outer frame.
      }
    }
    ++exc_stats_.unhandled;
    notify_exception(rec, DispatchOutcome::kUnhandled);
    return false;
  }

  // Linux personality: signal dispatch.
  int signo = signo_for(rec.code);
  gva_t handler = is_dispatchable_signal(signo) ? sig_handlers_[signo] : 0;
  if (handler != 0) {
    // handler(signo, siginfo*, ucontext*) — ucontext is the context part of
    // the record; the handler may edit saved pc/regs to recover.
    Cpu ctx = cpu;
    ctx.pc = handler;
    ctx.reg(isa::Reg::R1) = static_cast<u64>(signo);
    ctx.reg(isa::Reg::R2) = rec_addr;
    ctx.reg(isa::Reg::R3) = rec_addr + kExcRecRegs;
    ctx.sp() = align_down(rec_addr - 64, 16) - 8;
    if (mem_.write_uint(ctx.sp(), 8, kSentinelRet).ok && nest_depth_ < kMaxDispatchDepth) {
      ++nest_depth_;
      bool completed = false;
      for (u64 i = 0; i < kMaxFilterSteps; ++i) {
        if (ctx.pc == kSentinelRet) {
          completed = true;
          break;
        }
        StepResult r = step(ctx);
        if (r.kind != StepKind::kOk) break;  // fault/trap inside handler
      }
      --nest_depth_;
      if (completed) {
        u64 saved_pc = 0;
        CRP_CHECK(mem_.peek_u64(rec_addr + kExcRecCtxPc, &saved_pc));
        if (saved_pc == rec.fault_pc) {
          // Handler returned without advancing the context: re-executing
          // would fault forever; treat as death by SIGSEGV loop.
          ++exc_stats_.unhandled;
          notify_exception(rec, DispatchOutcome::kUnhandled);
          return false;
        }
        reload_context(cpu, rec_addr);
        ++exc_stats_.handled_signal;
        notify_exception(rec, DispatchOutcome::kSignalHandler);
        return true;
      }
    }
  }
  ++exc_stats_.unhandled;
  notify_exception(rec, DispatchOutcome::kUnhandled);
  return false;
}

std::optional<u64> Machine::call_subroutine(const Cpu& base, gva_t entry,
                                            std::initializer_list<u64> args, u64 max_steps) {
  Cpu ctx = base;
  ctx.pc = entry;
  int i = 1;
  for (u64 a : args) {
    CRP_CHECK(i <= 6);
    ctx.regs[static_cast<size_t>(i++)] = a;
  }
  ctx.sp() = align_down(ctx.sp() - 256, 16) - 8;
  if (!mem_.write_uint(ctx.sp(), 8, kSentinelRet).ok) return std::nullopt;
  for (u64 n = 0; n < max_steps;) {
    if (ctx.pc == kSentinelRet) return ctx.reg(isa::Reg::R0);
    BlockResult r = run_block(ctx, max_steps - n);
    n += r.steps;
    if (r.res.kind != StepKind::kOk) return std::nullopt;
  }
  return std::nullopt;
}

}  // namespace crp::vm
