#include "vm/module.h"

#include <algorithm>

namespace crp::vm {

gva_t LoadedModule::code_base() const {
  int cs = image->code_section();
  CRP_CHECK(cs >= 0);
  return section_base[static_cast<size_t>(cs)];
}

gva_t LoadedModule::code_end() const {
  int cs = image->code_section();
  CRP_CHECK(cs >= 0);
  const auto& sec = image->sections[static_cast<size_t>(cs)];
  return code_base() + std::max<u64>(sec.vsize, sec.bytes.size());
}

bool LoadedModule::contains_code(gva_t addr) const {
  if (image->code_section() < 0) return false;
  return addr >= code_base() && addr < code_end();
}

gva_t LoadedModule::export_addr(const std::string& name) const {
  const auto* e = image->find_export(name);
  return e != nullptr ? code_addr(e->offset) : 0;
}

gva_t LoadedModule::symbol_addr(const std::string& name) const {
  const auto* s = image->find_symbol(name);
  if (s == nullptr) return 0;
  return section_base[s->section] + s->offset;
}

std::vector<const isa::ScopeEntry*> LoadedModule::scopes_at(gva_t pc) const {
  std::vector<const isa::ScopeEntry*> out;
  if (!contains_code(pc)) return out;
  u64 off = pc - code_base();
  for (const auto& sc : image->scopes)
    if (off >= sc.begin && off < sc.end) out.push_back(&sc);
  std::sort(out.begin(), out.end(), [](const isa::ScopeEntry* a, const isa::ScopeEntry* b) {
    return (a->end - a->begin) < (b->end - b->begin);
  });
  return out;
}

}  // namespace crp::vm
