// Exception model: codes, records, dispatch outcomes, and the in-guest
// EXCEPTION_RECORD/context layout shared between the VM, exception filters,
// VEH handlers and signal handlers.
#pragma once

#include "mem/address_space.h"
#include "util/common.h"

namespace crp::vm {

/// Exception codes; values mirror NT status codes so authored filters can
/// compare against familiar constants.
enum class ExcCode : u32 {
  kAccessViolation = 0xC0000005,
  kIllegalInstruction = 0xC000001D,
  kIntDivideByZero = 0xC0000094,
  kStackOverflow = 0xC00000FD,
  kGuardPage = 0x80000001,
  kSingleStep = 0x80000004,  // trace trap (chaos-injected; no hardware TF model)
  kSoftware = 0xE0000001,  // program-raised (RaiseException / C++ throw analog)
};

const char* exc_name(ExcCode c);

/// Everything known about one exception at dispatch time.
struct ExceptionRecord {
  ExcCode code = ExcCode::kAccessViolation;
  gva_t fault_pc = 0;
  gva_t fault_addr = 0;          // faulting data address (AV only)
  mem::Access access = mem::Access::kRead;
};

/// SEH filter dispositions (values as on Windows).
inline constexpr i64 kExceptionExecuteHandler = 1;
inline constexpr i64 kExceptionContinueSearch = 0;
inline constexpr i64 kExceptionContinueExecution = -1;

/// How a dispatched exception was resolved (reported to observers; the
/// RateDetector defense and the coverage tracer both subscribe to this).
enum class DispatchOutcome : u8 {
  kUnhandled = 0,       // no handler accepted it -> crash
  kSehHandler,          // a scope filter returned EXECUTE_HANDLER
  kSehContinue,         // a scope filter returned CONTINUE_EXECUTION
  kVehContinue,         // a vectored handler resolved it
  kSignalHandler,       // a Linux signal handler resolved it
  kSwallowed,           // suppressed with no notification to the program (§III-C)
};

const char* dispatch_outcome_name(DispatchOutcome o);

/// Number of DispatchOutcome values (for per-outcome counter arrays).
inline constexpr size_t kNumDispatchOutcomes =
    static_cast<size_t>(DispatchOutcome::kSwallowed) + 1;

// In-guest exception record + context layout (all fields u64, little-endian):
//   +0   exception code
//   +8   fault pc
//   +16  fault address
//   +24  access kind (0=read 1=write 2=exec)
//   +32  saved regs r0..r15 (16 * 8 bytes)
//   +160 saved pc
//   +168 saved flags word
// Handlers may edit the saved context; CONTINUE_EXECUTION reloads it.
inline constexpr u64 kExcRecCode = 0;
inline constexpr u64 kExcRecPc = 8;
inline constexpr u64 kExcRecAddr = 16;
inline constexpr u64 kExcRecAccess = 24;
inline constexpr u64 kExcRecRegs = 32;
inline constexpr u64 kExcRecCtxPc = 160;
inline constexpr u64 kExcRecCtxFlags = 168;
inline constexpr u64 kExcRecSize = 176;

}  // namespace crp::vm
