// Instrumentation hook interface — the DynamoRIO analog.
//
// Observers attach to a Machine and receive one event per retired
// instruction plus exception-dispatch events. The taint engine, the
// coverage/call tracer and the rate-based defense are all observers.
#pragma once

#include "isa/isa.h"
#include "vm/cpu.h"
#include "vm/exception.h"

namespace crp::vm {

/// One retired (or faulted) instruction.
struct ExecEvent {
  gva_t pc = 0;
  isa::Instr ins{};
  // Memory effect of the instruction (mem_size == 0 when none). For push/
  // call this is the store of the return value/register; for pop/ret the
  // stack load.
  gva_t mem_addr = 0;
  u8 mem_size = 0;
  bool mem_write = false;
  // Control flow: resolved target for taken branches/calls/ret.
  bool is_call = false;
  bool is_ret = false;
  bool branch_taken = false;
  gva_t branch_target = 0;
  // The instruction faulted (event delivered before exception dispatch).
  bool faulted = false;
};

class ExecObserver {
 public:
  virtual ~ExecObserver() = default;

  /// Whether this observer needs on_exec delivery at all. Observers that
  /// only care about exception/filter events (e.g. the AV-rate defense)
  /// return false so the Machine can keep the block-translation engine
  /// enabled; per-instruction events are then not synthesized for them.
  virtual bool wants_exec() const { return true; }

  /// After each instruction executes (or faults). `cpu` is post-state for
  /// retired instructions, pre-dispatch state for faulted ones.
  virtual void on_exec(const ExecEvent& ev, const Cpu& cpu) {
    (void)ev;
    (void)cpu;
  }

  /// After exception dispatch concluded.
  virtual void on_exception(const ExceptionRecord& rec, DispatchOutcome outcome) {
    (void)rec;
    (void)outcome;
  }

  /// A scope filter / VEH handler / signal handler ran and returned
  /// `disposition` (filter semantics) for the exception at `rec`.
  /// `handler_pc` is the guest entry of the filter.
  virtual void on_filter(gva_t handler_pc, const ExceptionRecord& rec, i64 disposition) {
    (void)handler_pc;
    (void)rec;
    (void)disposition;
  }
};

}  // namespace crp::vm
