// The Machine: one guest process image — address space, loaded modules,
// exception machinery, personality — plus the interpreter that advances a
// Cpu context one instruction at a time.
//
// Threads and scheduling live in crp::os; the Machine is deliberately
// thread-agnostic: step(cpu) advances whichever context the scheduler hands
// it, and exception dispatch (including nested filter execution) happens
// synchronously inside step.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "chaos/chaos.h"
#include "isa/image.h"
#include "mem/address_space.h"
#include "mem/layout.h"
#include "vm/cpu.h"
#include "vm/exception.h"
#include "vm/hooks.h"
#include "vm/module.h"
#include "vm/translate.h"

namespace crp::obs {
class Counter;
}  // namespace crp::obs

namespace crp::vm {

/// OS personality of the process: selects trap instruction availability and
/// exception dispatch strategy (SEH/VEH vs signals).
enum class Personality : u8 { kLinux = 0, kWindows = 1 };

/// Why step() returned.
enum class StepKind : u8 {
  kOk = 0,       // one instruction retired (possibly via a handled exception)
  kHalt,         // kHalt executed
  kSyscallTrap,  // Linux syscall: OS layer must service and resume
  kApiTrap,      // Windows API call: OS layer must service and resume
  kCrash,        // unhandled exception -> process death
};

struct StepResult {
  StepKind kind = StepKind::kOk;
  ExceptionRecord exc{};  // valid for kCrash
  i64 api_id = 0;         // valid for kApiTrap
};

/// Result of run_block: the final step outcome plus how many interpreter
/// step() attempts it consumed (retired instructions, including a trailing
/// trap, plus the one faulting attempt when kind != kOk came from a fault).
/// `steps` is exactly the number of times the caller's old per-instruction
/// loop would have called step(), so callers can keep budgets and virtual
/// clocks bit-identical to interpreted execution.
struct BlockResult {
  StepResult res{};
  u64 steps = 0;
};

class TaintShadow;

/// Counters the defense experiments read.
struct ExceptionStats {
  u64 total = 0;
  u64 handled_seh = 0;
  u64 handled_veh = 0;
  u64 handled_signal = 0;
  u64 continued = 0;
  u64 unhandled = 0;
};

class Machine {
 public:
  explicit Machine(Personality personality, u64 aslr_seed = 1,
                   mem::AslrConfig aslr = {});

  Personality personality() const { return personality_; }
  mem::AddressSpace& mem() { return mem_; }
  const mem::AddressSpace& mem() const { return mem_; }
  mem::AslrLayout& layout() { return layout_; }
  const mem::AslrLayout& layout() const { return layout_; }

  // --- loading --------------------------------------------------------------

  /// Map an image at a randomized base, resolving imports against already
  /// loaded modules (two-pass loading: load DLLs first, then executables).
  /// Returns the module index.
  size_t load_image(std::shared_ptr<const isa::Image> image);

  const std::vector<LoadedModule>& modules() const { return modules_; }
  const LoadedModule* module_named(const std::string& name) const;
  /// Module whose code section contains `pc`, or nullptr.
  const LoadedModule* module_at(gva_t pc) const;
  /// Resolve "module!symbol" to a runtime address (0 if not found).
  gva_t resolve(const std::string& module, const std::string& symbol) const;

  // --- execution ------------------------------------------------------------

  /// Execute one instruction of `cpu`. Exceptions raised by the instruction
  /// are dispatched internally; only unhandled ones surface as kCrash.
  StepResult step(Cpu& cpu);

  /// Run until halt/crash/trap or `max_steps` spent. Returns the last step
  /// result (kOk means the budget ran out).
  StepResult run(Cpu& cpu, u64 max_steps);

  /// Advance `cpu` by up to `max_steps` instructions, using the block
  /// translation cache when enabled (CRP_JIT, on by default) and falling
  /// back to single interpreter steps otherwise. Never overshoots
  /// `max_steps`; always makes progress (steps >= 1) when max_steps > 0.
  /// Observable state (instret, countdown firing indices, taint, exception
  /// records) is bit-identical to calling step() `steps` times.
  BlockResult run_block(Cpu& cpu, u64 max_steps);

  bool jit_enabled() const { return jit_on_; }
  void set_jit_enabled(bool on);

  /// Register the shared taint shadow (and the observer that owns it) so
  /// translated traces propagate taint inline instead of routing every
  /// instruction through ExecEvents. Pass nullptrs to detach.
  void set_taint_shadow(TaintShadow* shadow, ExecObserver* owner);

  /// Call a guest subroutine to completion on a temporary context derived
  /// from `cpu` (shares memory, own register file). Used by exception
  /// dispatch for filters and by the OS layer for callbacks. Returns R0, or
  /// nullopt if the subroutine crashed or exceeded `max_steps`.
  std::optional<u64> call_subroutine(const Cpu& base, gva_t entry,
                                     std::initializer_list<u64> args, u64 max_steps = 200000);

  /// Dispatch an externally raised exception (e.g. a fault inside a Windows
  /// API body attributed to the calling instruction). On success, `cpu` is
  /// updated to the resume point and true is returned; false means the
  /// exception is unhandled (process should die).
  bool dispatch_exception(Cpu& cpu, const ExceptionRecord& rec);

  // --- exception machinery configuration -------------------------------------

  /// Register a vectored exception handler (AddVectoredExceptionHandler).
  void add_veh(gva_t handler);
  void remove_veh(gva_t handler);
  const std::vector<gva_t>& veh_chain() const { return veh_; }

  /// Install a Linux signal handler (0 = SIG_DFL). Only SIGSEGV (11),
  /// SIGBUS (7) and SIGFPE (8) participate in exception dispatch.
  void set_signal_handler(int signo, gva_t handler);
  gva_t signal_handler(int signo) const;

  /// §VII "Restricting access violations": when enabled, an AV whose fault
  /// address is *unmapped* bypasses all handlers and kills the process;
  /// only permission faults on mapped memory remain handleable.
  void set_mapped_only_av_policy(bool on) { mapped_only_av_ = on; }
  bool mapped_only_av_policy() const { return mapped_only_av_; }

  const ExceptionStats& exception_stats() const { return exc_stats_; }

  // --- observers ------------------------------------------------------------

  void add_observer(ExecObserver* obs);
  void remove_observer(ExecObserver* obs);

  /// Total instructions retired across all contexts.
  u64 instret() const { return instret_; }

  ~Machine();

 private:
  struct ExecOutcome {
    bool ok = true;
    ExceptionRecord exc{};
    StepResult trap{};  // kind != kOk when the instruction trapped/halted
  };

  ExecOutcome execute(Cpu& cpu, const isa::Instr& ins, gva_t pc, ExecEvent& ev);
  bool dispatch(Cpu& cpu, const ExceptionRecord& rec, int depth);
  /// Write the exception record + context below the context's stack;
  /// returns the guest address, or 0 if the stack is unusable.
  gva_t write_exc_record(const Cpu& cpu, const ExceptionRecord& rec);
  void reload_context(Cpu& cpu, gva_t rec_addr);
  std::optional<i64> run_filter(const Cpu& at_fault, gva_t entry, const ExceptionRecord& rec,
                                gva_t rec_addr, int depth);
  void notify_exec(const ExecEvent& ev, const Cpu& cpu);
  void notify_exception(const ExceptionRecord& rec, DispatchOutcome outcome);
  /// Push the instret delta since the last publish into the obs counter.
  /// A relaxed fetch_add per retired instruction costs ~20% on the
  /// interpreter hot loop, so the counter is synced in batches instead:
  /// every kObsPublishInterval steps, at exception dispatch, and on
  /// destruction.
  void publish_instret();
  void notify_filter(gva_t handler, const ExceptionRecord& rec, i64 disp);
  /// Chaos: maybe synthesize an injected exception instead of executing the
  /// next instruction. True when an injection happened (`*out` is the step
  /// outcome: kOk when a handler resolved it, kCrash otherwise).
  bool chaos_step_inject(Cpu& cpu, StepResult* out);

  // --- block translation engine (translate.cc) -------------------------------

  /// How translated traces execute: with no hooks at all, with inline taint
  /// propagation, or not at all (an observer needs per-instruction events,
  /// so everything goes through the interpreter).
  enum class ExecMode : u8 { kBare = 0, kTaint, kEvents };

  void recompute_exec_mode();
  /// Trace for `pc`, translating on miss. Also the reaping point for
  /// deferred invalidations (dirty pages, mapping-generation changes).
  const Trace* trace_for(gva_t pc);
  BlockResult exec_trace(Cpu& cpu, const Trace& tr, u64 budget);
  void jit_note_write(gva_t page_base);  // AddressSpace write watcher
  void jit_flush_all();
  void thint_flush();
  void tlb_flush();

  static constexpr u64 kObsPublishInterval = 4096;  // power of two
  static constexpr size_t kMaxTraceOps = 256;

  bool jit_on_ = false;
  ExecMode exec_mode_ = ExecMode::kBare;
  TaintShadow* taint_shadow_ = nullptr;
  ExecObserver* taint_owner_ = nullptr;
  TraceCache tcache_;
  u64 jit_mem_gen_ = 0;      // AddressSpace generation the cache was built on
  bool jit_dirty_ = false;   // a watched page was poked since the last reap
  std::vector<u64> jit_dirty_pages_;

  // Front-line pc -> trace hint (direct-mapped), flushed with the cache.
  struct TraceHint {
    gva_t pc = ~0ull;
    const Trace* tr = nullptr;
  };
  static constexpr size_t kTraceHintSize = 512;
  TraceHint thint_[kTraceHintSize];

  // Direct-mapped guest-page TLB for trace-mode loads/stores. Entries cache
  // the raw data pointer + perms + watch flag; flushed whenever the mapping
  // generation changes (data pointers are stable across pokes).
  struct TlbEntry {
    u64 page_no = ~0ull;
    u8* data = nullptr;
    u8 perms = 0;
    bool watched = false;
  };
  static constexpr u64 kTlbSize = 64;
  TlbEntry tlb_[kTlbSize];
  TlbEntry* tlb_get(u64 page_no);
  /// Profiler: attribute `pc` to a basic block (lazy per-module cfg::Cfg)
  /// and record one sample with the calling thread's ProfContext.
  void prof_sample(gva_t pc, u16 extra_flags);
  /// End (exclusive) of the static basic block containing `pc`, when a
  /// cfg::Cfg for its module has already been built (profiler caches);
  /// 0 when unknown. The translator uses it to align trace boundaries.
  gva_t prof_block_end(gva_t pc) const;

  Personality personality_;
  mem::AddressSpace mem_;
  mem::AslrLayout layout_;
  std::vector<LoadedModule> modules_;
  std::vector<gva_t> veh_;
  gva_t sig_handlers_[32] = {};
  bool mapped_only_av_ = false;
  ExceptionStats exc_stats_;
  // Chaos: injected AV / single-step exceptions at deterministic instruction
  // counts. chaos_countdown_ == 0 means vm injection is off and step() pays
  // exactly one compare per instruction.
  chaos::FaultStream chaos_;
  u64 chaos_countdown_ = 0;
  // Virtual-time sampling profiler (obs::Profiler). prof_countdown_ == 0
  // means sampling is off and step() pays exactly one compare per
  // instruction, mirroring the chaos countdown above. The interval is read
  // once at construction (CRP_PROF / Profiler::set_interval).
  u64 prof_interval_ = 0;
  u64 prof_countdown_ = 0;
  // Per-module block-attribution caches, built lazily at the first sample
  // landing in a module: a cfg::Cfg disassembly plus interned block-name
  // ids. Index-aligned with modules_.
  struct ProfModCache;
  std::vector<std::unique_ptr<ProfModCache>> prof_mods_;
  u32 prof_anon_block_ = 0;  // interned "[anon]" (pc outside any module)
  std::vector<ExecObserver*> observers_;
  u64 instret_ = 0;
  u64 instret_published_ = 0;
  int nest_depth_ = 0;

  // obs::Registry metrics are never removed, so these stay valid for the
  // lifetime of the process — acquired once in the constructor to keep the
  // interpreter hot path free of name lookups.
  obs::Counter* c_instret_;
  obs::Counter* c_exceptions_;
  obs::Counter* c_filter_evals_;
  obs::Counter* c_mapped_only_kills_;
  obs::Counter* c_dispatch_[kNumDispatchOutcomes];
};

/// Sentinel return address used by call_subroutine / filter execution.
inline constexpr gva_t kSentinelRet = 0xFFFF'FFFF'FFFF'F000ull;

}  // namespace crp::vm
