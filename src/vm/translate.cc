// Block translation + the trace execution engine (DESIGN.md §14).
//
// Everything Machine-side of the translation cache lives here: translation
// (decode-until-branch with precomputed targets), the trace cache with
// page-granular invalidation, and Machine::exec_trace — the threaded-
// dispatch inner loop that replaces fetch/decode/ExecEvent/observer-walk
// with one indirect jump per retired instruction.

#include <algorithm>
#include <bit>
#include <cstring>

#include "vm/machine.h"
#include "vm/shadow.h"
#include "vm/translate.h"

static_assert(std::endian::native == std::endian::little,
              "trace fast paths memcpy guest little-endian words directly");

namespace crp::vm {

// --- translation -------------------------------------------------------------

std::unique_ptr<Trace> translate_block(const mem::AddressSpace& mem,
                                       const std::vector<LoadedModule>& modules, gva_t entry,
                                       gva_t stop_pc, size_t max_ops) {
  using isa::Op;
  auto t = std::make_unique<Trace>();
  t->entry = entry;
  gva_t pc = entry;
  while (t->ops.size() < max_ops && (stop_pc == 0 || pc < stop_pc)) {
    u8 word[isa::kInstrBytes];
    if (!mem.fetch(pc, word).ok) break;
    std::optional<isa::Instr> ins = isa::decode(word);
    if (!ins.has_value()) break;  // interpreter raises the IllegalInstruction

    MicroOp o;
    o.op = ins->op;
    o.ra = ins->ra;
    o.rb = ins->rb;
    o.w = ins->w;
    o.imm = ins->imm;
    o.pc = pc;
    gva_t next = pc + isa::kInstrBytes;

    bool terminal = false;
    // Unconditional transfers with a translation-time target chain: the
    // decode cursor follows the edge and the successor instruction lands in
    // the same trace. Only when no CFG clamp is in force (stop_pc == 0);
    // with a clamp, traces keep the static basic-block shape.
    auto chain_or_end = [&]() {
      if (stop_pc == 0 && t->ops.size() + 1 < max_ops) {
        o.chain = true;
      } else {
        terminal = true;
      }
    };
    switch (ins->op) {
      case Op::kLeaPc: o.aux = next + static_cast<u64>(ins->imm); break;
      case Op::kJcc: o.aux = next + static_cast<u64>(ins->imm); break;
      case Op::kJmp:
        o.aux = next + static_cast<u64>(ins->imm);
        chain_or_end();
        break;
      case Op::kCall:
        o.aux = next + static_cast<u64>(ins->imm);
        chain_or_end();
        break;
      case Op::kCallImp: {
        const LoadedModule* m = nullptr;
        for (const auto& mod : modules)
          if (mod.contains_code(pc)) {
            m = &mod;
            break;
          }
        size_t idx = static_cast<size_t>(ins->imm);
        if (m == nullptr || idx >= m->import_addr.size() || m->import_addr[idx] == 0) {
          // Unresolvable import: end the trace before it; the interpreter
          // raises the exact IllegalInstruction fault on re-execution.
          goto done;
        }
        o.aux = m->import_addr[idx];
        chain_or_end();
        break;
      }
      case Op::kJmpR:
      case Op::kCallR:
      case Op::kRet:
      case Op::kHalt:
      case Op::kSyscall:
      case Op::kApiCall:
        terminal = true;
        break;
      default: break;
    }
    t->ops.push_back(o);
    pc = o.chain ? o.aux : next;
    if (terminal) break;
  }
done:
  if (t->ops.empty()) return nullptr;
  // Distinct pages holding trace bytes (chaining makes them non-contiguous).
  for (const MicroOp& o : t->ops) {
    t->pages.push_back(o.pc / mem::kPageSize);
    t->pages.push_back((o.pc + isa::kInstrBytes - 1) / mem::kPageSize);
  }
  std::sort(t->pages.begin(), t->pages.end());
  t->pages.erase(std::unique(t->pages.begin(), t->pages.end()), t->pages.end());
  return t;
}

// --- trace cache -------------------------------------------------------------

const Trace* TraceCache::insert(std::unique_ptr<Trace> t) {
  const Trace* raw = t.get();
  translated_ops_ += t->ops.size();
  for (u64 p : t->pages) page_entries_[p].push_back(t->entry);
  traces_[t->entry] = std::move(t);
  return raw;
}

void TraceCache::invalidate_page(u64 page_no) {
  auto it = page_entries_.find(page_no);
  if (it == page_entries_.end()) return;
  for (gva_t entry : it->second) traces_.erase(entry);
  page_entries_.erase(it);
}

void TraceCache::clear() {
  traces_.clear();
  page_entries_.clear();
}

// --- Machine integration -----------------------------------------------------

void Machine::set_jit_enabled(bool on) {
  jit_on_ = on;
  if (!on) jit_flush_all();
}

void Machine::set_taint_shadow(TaintShadow* shadow, ExecObserver* owner) {
  taint_shadow_ = shadow;
  taint_owner_ = owner;
  recompute_exec_mode();
}

void Machine::recompute_exec_mode() {
  bool events = false;
  for (ExecObserver* o : observers_)
    if (o != taint_owner_ && o->wants_exec()) events = true;
  exec_mode_ = events ? ExecMode::kEvents
                      : (taint_shadow_ != nullptr ? ExecMode::kTaint : ExecMode::kBare);
}

void Machine::jit_note_write(gva_t page_base) {
  u64 pn = page_base / mem::kPageSize;
  if (!jit_dirty_pages_.empty() && jit_dirty_pages_.back() == pn) return;
  jit_dirty_ = true;
  jit_dirty_pages_.push_back(pn);
}

void Machine::thint_flush() {
  for (TraceHint& h : thint_) h = TraceHint{};
}

void Machine::tlb_flush() {
  for (TlbEntry& e : tlb_) e = TlbEntry{};
}

void Machine::jit_flush_all() {
  tcache_.clear();
  thint_flush();
  tlb_flush();
  jit_dirty_pages_.clear();
  jit_dirty_ = false;
}

Machine::TlbEntry* Machine::tlb_get(u64 page_no) {
  TlbEntry& e = tlb_[page_no & (kTlbSize - 1)];
  if (e.page_no == page_no && e.data != nullptr) return &e;
  mem::PageRef pr = mem_.page_ref(page_no * mem::kPageSize);
  if (pr.data == nullptr) return nullptr;
  e = {page_no, pr.data, pr.perms, pr.watched};
  return &e;
}

const Trace* Machine::trace_for(gva_t pc) {
  u64 gen = mem_.generation();
  if (gen != jit_mem_gen_) {
    // Mapping layout changed (map/unmap/protect): drop everything; the hot
    // set re-translates in a handful of blocks.
    jit_flush_all();
    jit_mem_gen_ = gen;
  } else if (jit_dirty_) {
    for (u64 pn : jit_dirty_pages_) tcache_.invalidate_page(pn);
    jit_dirty_pages_.clear();
    jit_dirty_ = false;
    thint_flush();  // hints may point at freed traces
  }

  TraceHint& h = thint_[(pc >> 4) & (kTraceHintSize - 1)];
  if (h.pc == pc) return h.tr;

  const Trace* tr = tcache_.lookup(pc);
  if (tr == nullptr) {
    // Reuse static block boundaries when the profiler already built a CFG
    // for this module; otherwise decode-until-branch.
    gva_t stop = prof_block_end(pc);
    std::unique_ptr<Trace> t = translate_block(mem_, modules_, pc, stop, kMaxTraceOps);
    if (t == nullptr) return nullptr;
    // Watch the covered pages so any poke/guest store invalidates us; the
    // set_watch generation bump is ours, absorb it (and refresh the TLB,
    // whose watched snapshots just went stale).
    for (u64 pn : t->pages) mem_.set_watch(pn * mem::kPageSize, mem::kPageSize, true);
    tr = tcache_.insert(std::move(t));
    jit_mem_gen_ = mem_.generation();
    tlb_flush();
  }
  h.pc = pc;
  h.tr = tr;
  return tr;
}

BlockResult Machine::run_block(Cpu& cpu, u64 max_steps) {
  BlockResult out;
  if (max_steps == 0) return out;
  if (jit_on_ && exec_mode_ != ExecMode::kEvents) {
    // Clamp the trace budget below every armed countdown: the attempt at
    // which a countdown expires must run through step() so chaos/prof fire
    // at the exact same retired-instruction index as the interpreter.
    u64 budget = max_steps;
    if (chaos_countdown_ != 0) budget = std::min(budget, chaos_countdown_ - 1);
    if (prof_countdown_ != 0) budget = std::min(budget, prof_countdown_ - 1);
    if (budget != 0) {
      const Trace* tr = trace_for(cpu.pc);
      if (tr != nullptr) {
        out = exec_trace(cpu, *tr, budget);
        // Countdowns tick once per step() attempt; every trace op is one
        // successfully retired attempt, so consume them in bulk (the clamp
        // guarantees they stay >= 1).
        if (chaos_countdown_ != 0) chaos_countdown_ -= out.steps;
        if (prof_countdown_ != 0) prof_countdown_ -= out.steps;
        if (out.steps != 0 || out.res.kind != StepKind::kOk) return out;
        // Side-exit on the very first op: fall through and interpret it.
      }
    }
  }
  out.res = step(cpu);
  out.steps = 1;
  return out;
}

// --- trace executor ----------------------------------------------------------

namespace {

inline u64 load_le(const u8* p, u8 w) {
  switch (w) {
    case 1: return *p;
    case 2: {
      u16 v;
      std::memcpy(&v, p, 2);
      return v;
    }
    case 4: {
      u32 v;
      std::memcpy(&v, p, 4);
      return v;
    }
    default: {
      u64 v;
      std::memcpy(&v, p, 8);
      return v;
    }
  }
}

inline void store_le(u8* p, u8 w, u64 v) {
  switch (w) {
    case 1: *p = static_cast<u8>(v); break;
    case 2: {
      u16 x = static_cast<u16>(v);
      std::memcpy(p, &x, 2);
      break;
    }
    case 4: {
      u32 x = static_cast<u32>(v);
      std::memcpy(p, &x, 4);
      break;
    }
    default: std::memcpy(p, &v, 8); break;
  }
}

}  // namespace

// Threaded dispatch: with GNU extensions each op body jumps directly to the
// next op's body through a label table (no loop bound / switch re-dispatch
// on the hot path); otherwise a plain switch in a loop.
#if defined(__GNUC__) || defined(__clang__)
#define CRP_THREADED_DISPATCH 1
#endif

BlockResult Machine::exec_trace(Cpu& cpu, const Trace& tr, u64 budget) {
  BlockResult out;
  TaintShadow* sh =
      (exec_mode_ == ExecMode::kTaint && taint_shadow_->enabled()) ? taint_shadow_ : nullptr;
  u64* R = cpu.regs.data();
  const MicroOp* ops = tr.ops.data();
  const u64 n = tr.ops.size();
  u64 i = 0;
  u64 done = 0;

  // Single-page fast loads/stores through the TLB; cross-page ranges take
  // the checked slow path (validate-first: a fault commits nothing).
  // mem_write returns 0 on fault, 1 on the unwatched fast path, 2 when it
  // went through poke (watched page: the write watcher may have dirtied
  // the cache, including the trace being executed).
  auto mem_read = [&](gva_t addr, u8 w, u64* v) -> bool {
    u64 off = addr & mem::kPageMask;
    if (off + w <= mem::kPageSize) [[likely]] {
      TlbEntry* e = tlb_get(addr / mem::kPageSize);
      if (e == nullptr || (e->perms & mem::kPermR) == 0) return false;
      *v = load_le(e->data + off, w);
      return true;
    }
    return mem_.read_uint(addr, w, v).ok;
  };
  auto mem_write = [&](gva_t addr, u8 w, u64 v) -> int {
    u64 off = addr & mem::kPageMask;
    if (off + w <= mem::kPageSize) [[likely]] {
      TlbEntry* e = tlb_get(addr / mem::kPageSize);
      if (e == nullptr || (e->perms & mem::kPermW) == 0) return 0;
      if (!e->watched) [[likely]] {
        store_le(e->data + off, w, v);
        return 1;
      }
    }
    return mem_.write_uint(addr, w, v).ok ? 2 : 0;
  };
  auto set_cmp_flags = [&](u64 a, u64 b) {
    u64 d = a - b;
    cpu.zf = d == 0;
    cpu.sf = (d >> 63) != 0;
    cpu.cf = a < b;
    cpu.of = (((a ^ b) & (a ^ d)) >> 63) != 0;
  };

// Book-keeping per retired op — identical, by construction, to what the
// interpreter does per step: instret, batched publish, taint propagation.
#define CRP_RETIRE(o, maddr, msz)                                         \
  do {                                                                    \
    ++done;                                                               \
    ++instret_;                                                           \
    if ((instret_ & (kObsPublishInterval - 1)) == 0) publish_instret();   \
    if (sh != nullptr) sh->propagate((o).op, (o).ra, (o).rb, (o).w, (maddr), (msz)); \
  } while (0)

// Side-exit without committing anything: rewind to the op's pc; the caller
// re-executes it through the interpreter (exact faults/events/countdowns).
#define CRP_SIDE_EXIT(o)   \
  do {                     \
    cpu.pc = (o).pc;       \
    goto trace_exit;       \
  } while (0)

// Continue to the next op, or leave with pc at the fallthrough address when
// the trace or the budget ends.
#ifdef CRP_THREADED_DISPATCH
#define CRP_NEXT(o)                                        \
  do {                                                     \
    ++i;                                                   \
    if (i >= n || done >= budget) {                        \
      cpu.pc = (o).pc + isa::kInstrBytes;                  \
      goto trace_exit;                                     \
    }                                                      \
    goto* kDispatch[static_cast<u8>(ops[i].op)];           \
  } while (0)
#define CRP_OP(name) lbl_##name
#else
#define CRP_NEXT(o)                                        \
  do {                                                     \
    ++i;                                                   \
    if (i >= n || done >= budget) {                        \
      cpu.pc = (o).pc + isa::kInstrBytes;                  \
      goto trace_exit;                                     \
    }                                                      \
    goto dispatch;                                         \
  } while (0)
#define CRP_OP(name) case isa::Op::name
#endif

// Continue into a chained successor: cpu.pc already holds the transfer
// target (which is ops[i+1].pc), so budget/end exits need no pc fixup.
#ifdef CRP_THREADED_DISPATCH
#define CRP_CHAIN_NEXT()                                   \
  do {                                                     \
    ++i;                                                   \
    if (i >= n || done >= budget) goto trace_exit;         \
    goto* kDispatch[static_cast<u8>(ops[i].op)];           \
  } while (0)
#else
#define CRP_CHAIN_NEXT()                                   \
  do {                                                     \
    ++i;                                                   \
    if (i >= n || done >= budget) goto trace_exit;         \
    goto dispatch;                                         \
  } while (0)
#endif

// A dirty flag set by this op's own store means the remaining trace ops may
// be stale bytes — commit this op, then leave at the fallthrough pc.
#define CRP_DIRTY_CHECK(o)                     \
  do {                                         \
    if (wr == 2 && jit_dirty_) {               \
      cpu.pc = (o).pc + isa::kInstrBytes;      \
      goto trace_exit;                         \
    }                                          \
  } while (0)

#ifdef CRP_THREADED_DISPATCH
  // Indexed by isa::Op (same order as the enum; kCount never appears in a
  // translated trace but keeps the table total).
  static const void* const kDispatch[] = {
      &&lbl_kNop,    &&lbl_kHalt,   &&lbl_kMovRR,  &&lbl_kMovRI,  &&lbl_kLea,
      &&lbl_kLeaPc,  &&lbl_kLoad,   &&lbl_kStore,  &&lbl_kPush,   &&lbl_kPop,
      &&lbl_kAddRR,  &&lbl_kAddRI,  &&lbl_kSubRR,  &&lbl_kSubRI,  &&lbl_kMulRR,
      &&lbl_kMulRI,  &&lbl_kDivRR,  &&lbl_kModRR,  &&lbl_kAndRR,  &&lbl_kAndRI,
      &&lbl_kOrRR,   &&lbl_kOrRI,   &&lbl_kXorRR,  &&lbl_kXorRI,  &&lbl_kShlRI,
      &&lbl_kShrRI,  &&lbl_kSarRI,  &&lbl_kShlRR,  &&lbl_kShrRR,  &&lbl_kNot,
      &&lbl_kNeg,    &&lbl_kCmpRR,  &&lbl_kCmpRI,  &&lbl_kTestRR, &&lbl_kTestRI,
      &&lbl_kJmp,    &&lbl_kJmpR,   &&lbl_kJcc,    &&lbl_kCall,   &&lbl_kCallR,
      &&lbl_kCallImp, &&lbl_kRet,   &&lbl_kSyscall, &&lbl_kApiCall, &&lbl_kNop,
  };
  static_assert(sizeof(kDispatch) / sizeof(kDispatch[0]) ==
                static_cast<size_t>(isa::Op::kCount) + 1);
  goto* kDispatch[static_cast<u8>(ops[0].op)];
#else
dispatch:
  switch (ops[i].op) {
#endif

  CRP_OP(kNop) : {
    const MicroOp& o = ops[i];
    CRP_RETIRE(o, 0, 0);
    CRP_NEXT(o);
  }
  CRP_OP(kMovRR) : {
    const MicroOp& o = ops[i];
    R[static_cast<u8>(o.ra)] = R[static_cast<u8>(o.rb)];
    CRP_RETIRE(o, 0, 0);
    CRP_NEXT(o);
  }
  CRP_OP(kMovRI) : {
    const MicroOp& o = ops[i];
    R[static_cast<u8>(o.ra)] = static_cast<u64>(o.imm);
    CRP_RETIRE(o, 0, 0);
    CRP_NEXT(o);
  }
  CRP_OP(kLea) : {
    const MicroOp& o = ops[i];
    R[static_cast<u8>(o.ra)] = R[static_cast<u8>(o.rb)] + static_cast<u64>(o.imm);
    CRP_RETIRE(o, 0, 0);
    CRP_NEXT(o);
  }
  CRP_OP(kLeaPc) : {
    const MicroOp& o = ops[i];
    R[static_cast<u8>(o.ra)] = o.aux;
    CRP_RETIRE(o, 0, 0);
    CRP_NEXT(o);
  }
  CRP_OP(kLoad) : {
    const MicroOp& o = ops[i];
    gva_t addr = R[static_cast<u8>(o.rb)] + static_cast<u64>(o.imm);
    u64 v;
    if (!mem_read(addr, o.w, &v)) CRP_SIDE_EXIT(o);
    R[static_cast<u8>(o.ra)] = v;
    CRP_RETIRE(o, addr, o.w);
    CRP_NEXT(o);
  }
  CRP_OP(kStore) : {
    const MicroOp& o = ops[i];
    gva_t addr = R[static_cast<u8>(o.ra)] + static_cast<u64>(o.imm);
    int wr = mem_write(addr, o.w, R[static_cast<u8>(o.rb)]);
    if (wr == 0) CRP_SIDE_EXIT(o);
    CRP_RETIRE(o, addr, o.w);
    CRP_DIRTY_CHECK(o);
    CRP_NEXT(o);
  }
  CRP_OP(kPush) : {
    const MicroOp& o = ops[i];
    gva_t addr = R[14] - 8;
    int wr = mem_write(addr, 8, R[static_cast<u8>(o.ra)]);
    if (wr == 0) CRP_SIDE_EXIT(o);
    R[14] = addr;
    CRP_RETIRE(o, addr, 8);
    CRP_DIRTY_CHECK(o);
    CRP_NEXT(o);
  }
  CRP_OP(kPop) : {
    const MicroOp& o = ops[i];
    gva_t addr = R[14];
    u64 v;
    if (!mem_read(addr, 8, &v)) CRP_SIDE_EXIT(o);
    R[static_cast<u8>(o.ra)] = v;
    R[14] = addr + 8;  // interpreter order: SP write last (ra may be SP)
    CRP_RETIRE(o, addr, 8);
    CRP_NEXT(o);
  }
  CRP_OP(kAddRR) : {
    const MicroOp& o = ops[i];
    R[static_cast<u8>(o.ra)] += R[static_cast<u8>(o.rb)];
    CRP_RETIRE(o, 0, 0);
    CRP_NEXT(o);
  }
  CRP_OP(kAddRI) : {
    const MicroOp& o = ops[i];
    R[static_cast<u8>(o.ra)] += static_cast<u64>(o.imm);
    CRP_RETIRE(o, 0, 0);
    CRP_NEXT(o);
  }
  CRP_OP(kSubRR) : {
    const MicroOp& o = ops[i];
    R[static_cast<u8>(o.ra)] -= R[static_cast<u8>(o.rb)];
    CRP_RETIRE(o, 0, 0);
    CRP_NEXT(o);
  }
  CRP_OP(kSubRI) : {
    const MicroOp& o = ops[i];
    R[static_cast<u8>(o.ra)] -= static_cast<u64>(o.imm);
    CRP_RETIRE(o, 0, 0);
    CRP_NEXT(o);
  }
  CRP_OP(kMulRR) : {
    const MicroOp& o = ops[i];
    R[static_cast<u8>(o.ra)] *= R[static_cast<u8>(o.rb)];
    CRP_RETIRE(o, 0, 0);
    CRP_NEXT(o);
  }
  CRP_OP(kMulRI) : {
    const MicroOp& o = ops[i];
    R[static_cast<u8>(o.ra)] *= static_cast<u64>(o.imm);
    CRP_RETIRE(o, 0, 0);
    CRP_NEXT(o);
  }
  CRP_OP(kDivRR) : {
    const MicroOp& o = ops[i];
    u64 d = R[static_cast<u8>(o.rb)];
    if (d == 0) CRP_SIDE_EXIT(o);  // interpreter raises DivideByZero
    R[static_cast<u8>(o.ra)] /= d;
    CRP_RETIRE(o, 0, 0);
    CRP_NEXT(o);
  }
  CRP_OP(kModRR) : {
    const MicroOp& o = ops[i];
    u64 d = R[static_cast<u8>(o.rb)];
    if (d == 0) CRP_SIDE_EXIT(o);
    R[static_cast<u8>(o.ra)] %= d;
    CRP_RETIRE(o, 0, 0);
    CRP_NEXT(o);
  }
  CRP_OP(kAndRR) : {
    const MicroOp& o = ops[i];
    R[static_cast<u8>(o.ra)] &= R[static_cast<u8>(o.rb)];
    CRP_RETIRE(o, 0, 0);
    CRP_NEXT(o);
  }
  CRP_OP(kAndRI) : {
    const MicroOp& o = ops[i];
    R[static_cast<u8>(o.ra)] &= static_cast<u64>(o.imm);
    CRP_RETIRE(o, 0, 0);
    CRP_NEXT(o);
  }
  CRP_OP(kOrRR) : {
    const MicroOp& o = ops[i];
    R[static_cast<u8>(o.ra)] |= R[static_cast<u8>(o.rb)];
    CRP_RETIRE(o, 0, 0);
    CRP_NEXT(o);
  }
  CRP_OP(kOrRI) : {
    const MicroOp& o = ops[i];
    R[static_cast<u8>(o.ra)] |= static_cast<u64>(o.imm);
    CRP_RETIRE(o, 0, 0);
    CRP_NEXT(o);
  }
  CRP_OP(kXorRR) : {
    const MicroOp& o = ops[i];
    R[static_cast<u8>(o.ra)] ^= R[static_cast<u8>(o.rb)];
    CRP_RETIRE(o, 0, 0);
    CRP_NEXT(o);
  }
  CRP_OP(kXorRI) : {
    const MicroOp& o = ops[i];
    R[static_cast<u8>(o.ra)] ^= static_cast<u64>(o.imm);
    CRP_RETIRE(o, 0, 0);
    CRP_NEXT(o);
  }
  CRP_OP(kShlRI) : {
    const MicroOp& o = ops[i];
    R[static_cast<u8>(o.ra)] <<= (o.imm & 63);
    CRP_RETIRE(o, 0, 0);
    CRP_NEXT(o);
  }
  CRP_OP(kShrRI) : {
    const MicroOp& o = ops[i];
    R[static_cast<u8>(o.ra)] >>= (o.imm & 63);
    CRP_RETIRE(o, 0, 0);
    CRP_NEXT(o);
  }
  CRP_OP(kSarRI) : {
    const MicroOp& o = ops[i];
    u64& ra = R[static_cast<u8>(o.ra)];
    ra = static_cast<u64>(static_cast<i64>(ra) >> (o.imm & 63));
    CRP_RETIRE(o, 0, 0);
    CRP_NEXT(o);
  }
  CRP_OP(kShlRR) : {
    const MicroOp& o = ops[i];
    R[static_cast<u8>(o.ra)] <<= (R[static_cast<u8>(o.rb)] & 63);
    CRP_RETIRE(o, 0, 0);
    CRP_NEXT(o);
  }
  CRP_OP(kShrRR) : {
    const MicroOp& o = ops[i];
    R[static_cast<u8>(o.ra)] >>= (R[static_cast<u8>(o.rb)] & 63);
    CRP_RETIRE(o, 0, 0);
    CRP_NEXT(o);
  }
  CRP_OP(kNot) : {
    const MicroOp& o = ops[i];
    R[static_cast<u8>(o.ra)] = ~R[static_cast<u8>(o.ra)];
    CRP_RETIRE(o, 0, 0);
    CRP_NEXT(o);
  }
  CRP_OP(kNeg) : {
    const MicroOp& o = ops[i];
    R[static_cast<u8>(o.ra)] = 0 - R[static_cast<u8>(o.ra)];
    CRP_RETIRE(o, 0, 0);
    CRP_NEXT(o);
  }
  CRP_OP(kCmpRR) : {
    const MicroOp& o = ops[i];
    set_cmp_flags(R[static_cast<u8>(o.ra)], R[static_cast<u8>(o.rb)]);
    CRP_RETIRE(o, 0, 0);
    CRP_NEXT(o);
  }
  CRP_OP(kCmpRI) : {
    const MicroOp& o = ops[i];
    set_cmp_flags(R[static_cast<u8>(o.ra)], static_cast<u64>(o.imm));
    CRP_RETIRE(o, 0, 0);
    CRP_NEXT(o);
  }
  CRP_OP(kTestRR) : {
    const MicroOp& o = ops[i];
    u64 v = R[static_cast<u8>(o.ra)] & R[static_cast<u8>(o.rb)];
    cpu.zf = v == 0;
    cpu.sf = (v >> 63) != 0;
    cpu.cf = cpu.of = false;
    CRP_RETIRE(o, 0, 0);
    CRP_NEXT(o);
  }
  CRP_OP(kTestRI) : {
    const MicroOp& o = ops[i];
    u64 v = R[static_cast<u8>(o.ra)] & static_cast<u64>(o.imm);
    cpu.zf = v == 0;
    cpu.sf = (v >> 63) != 0;
    cpu.cf = cpu.of = false;
    CRP_RETIRE(o, 0, 0);
    CRP_NEXT(o);
  }
  CRP_OP(kJmp) : {
    const MicroOp& o = ops[i];
    cpu.pc = o.aux;
    CRP_RETIRE(o, 0, 0);
    if (o.chain) CRP_CHAIN_NEXT();
    goto trace_exit;
  }
  CRP_OP(kJmpR) : {
    const MicroOp& o = ops[i];
    cpu.pc = R[static_cast<u8>(o.ra)];
    CRP_RETIRE(o, 0, 0);
    goto trace_exit;
  }
  CRP_OP(kJcc) : {
    const MicroOp& o = ops[i];
    if (cpu.eval(static_cast<isa::Cond>(o.w))) {
      cpu.pc = o.aux;
      CRP_RETIRE(o, 0, 0);
      goto trace_exit;
    }
    CRP_RETIRE(o, 0, 0);
    CRP_NEXT(o);
  }
  CRP_OP(kCall) : {
    const MicroOp& o = ops[i];
    gva_t slot = R[14] - 8;
    int wr = mem_write(slot, 8, o.pc + isa::kInstrBytes);
    if (wr == 0) CRP_SIDE_EXIT(o);
    R[14] = slot;
    cpu.pc = o.aux;
    CRP_RETIRE(o, slot, 8);
    // The push may have dirtied a translated page (watched-path write):
    // the chained remainder could be stale bytes, so exit at the target.
    if (o.chain && !(wr == 2 && jit_dirty_)) CRP_CHAIN_NEXT();
    goto trace_exit;
  }
  CRP_OP(kCallR) : {
    const MicroOp& o = ops[i];
    gva_t target = R[static_cast<u8>(o.ra)];  // read before the push (ra may be SP)
    gva_t slot = R[14] - 8;
    int wr = mem_write(slot, 8, o.pc + isa::kInstrBytes);
    if (wr == 0) CRP_SIDE_EXIT(o);
    R[14] = slot;
    cpu.pc = target;
    CRP_RETIRE(o, slot, 8);
    goto trace_exit;
  }
  CRP_OP(kCallImp) : {
    const MicroOp& o = ops[i];
    gva_t slot = R[14] - 8;
    int wr = mem_write(slot, 8, o.pc + isa::kInstrBytes);
    if (wr == 0) CRP_SIDE_EXIT(o);
    R[14] = slot;
    cpu.pc = o.aux;  // resolved at translation time
    CRP_RETIRE(o, slot, 8);
    if (o.chain && !(wr == 2 && jit_dirty_)) CRP_CHAIN_NEXT();
    goto trace_exit;
  }
  CRP_OP(kRet) : {
    const MicroOp& o = ops[i];
    gva_t slot = R[14];
    u64 target;
    if (!mem_read(slot, 8, &target)) CRP_SIDE_EXIT(o);
    R[14] = slot + 8;
    cpu.pc = target;
    CRP_RETIRE(o, slot, 8);
    goto trace_exit;
  }
  CRP_OP(kHalt) : {
    const MicroOp& o = ops[i];
    cpu.pc = o.pc + isa::kInstrBytes;
    CRP_RETIRE(o, 0, 0);
    out.res.kind = StepKind::kHalt;
    goto trace_exit;
  }
  CRP_OP(kSyscall) : {
    const MicroOp& o = ops[i];
    if (personality_ != Personality::kLinux) CRP_SIDE_EXIT(o);
    cpu.pc = o.pc + isa::kInstrBytes;
    CRP_RETIRE(o, 0, 0);
    out.res.kind = StepKind::kSyscallTrap;
    goto trace_exit;
  }
  CRP_OP(kApiCall) : {
    const MicroOp& o = ops[i];
    if (personality_ != Personality::kWindows) CRP_SIDE_EXIT(o);
    cpu.pc = o.pc + isa::kInstrBytes;
    CRP_RETIRE(o, 0, 0);
    out.res.kind = StepKind::kApiTrap;
    out.res.api_id = o.imm;
    goto trace_exit;
  }

#ifndef CRP_THREADED_DISPATCH
    default: {
      // kCount never decodes; anything unexpected re-executes interpreted.
      CRP_SIDE_EXIT(ops[i]);
    }
  }  // switch
#endif

trace_exit:
  out.steps = done;
  return out;

#undef CRP_RETIRE
#undef CRP_SIDE_EXIT
#undef CRP_NEXT
#undef CRP_CHAIN_NEXT
#undef CRP_OP
#undef CRP_DIRTY_CHECK
}

}  // namespace crp::vm
