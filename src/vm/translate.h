// Block-translation cache for the MiniVM hot path (DESIGN.md §14).
//
// The interpreter pays a page-table hash lookup (instruction fetch), a
// decode, an ExecEvent construction and an observer walk for every retired
// instruction. The translator removes all of that from steady state: each
// basic block is decoded ONCE into a flat vector of MicroOps with all
// pc-relative values precomputed, and the Machine executes the trace by
// threaded dispatch (see Machine::exec_trace in translate.cc).
//
// Correctness contract (the "side-exit" rules):
//   * A trace op that would fault, hit an unresolvable import, or observe a
//     personality mismatch is NEVER committed by the trace engine: the
//     executor rewinds cpu.pc to the op's guest pc and returns, and the
//     caller re-executes that instruction through the interpreter
//     (Machine::step), which reproduces the exact ExecEvent, countdown
//     behavior, ExceptionRecord and dispatch the interpreter always had.
//   * Traces are invalidated on any poke/guest store into a page holding
//     translated code (AddressSpace write watcher) and the whole cache is
//     dropped when the mapping generation changes (map/unmap/protect).
//   * Countdown hooks (chaos scheduled AVs, CRP_PROF sampling) fire at the
//     same retired-instruction index as the interpreter: run_block clamps
//     the trace budget below the nearest countdown, so the firing attempt
//     itself is always interpreted.
#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "isa/isa.h"
#include "mem/address_space.h"
#include "util/common.h"
#include "vm/module.h"

namespace crp::vm {

/// One flattened micro-op. `aux` holds the value the interpreter would
/// recompute from pc every execution: the absolute branch target for
/// kJmp/kJcc/kCall, the materialized address for kLeaPc, the resolved
/// import address for kCallImp, and pc+16 (the return address) for calls.
struct MicroOp {
  isa::Op op = isa::Op::kNop;
  isa::Reg ra = isa::Reg::R0;
  isa::Reg rb = isa::Reg::R0;
  u8 w = 0;
  i64 imm = 0;
  gva_t pc = 0;  // guest pc of the source instruction
  u64 aux = 0;
  // Unconditional direct transfer (kJmp/kCall/kCallImp) whose successor was
  // folded into this trace: execution continues at ops[i+1], which is the
  // instruction at `aux`, instead of exiting the trace.
  bool chain = false;
};

/// One translated trace: straight-line code from `entry` up to the first
/// unpredictable control transfer (kJmpR/kCallR/kRet) or trap. Conditional
/// branches may appear mid-trace (the not-taken path falls through; taken
/// exits), and unconditional direct jumps/calls are chained through, so one
/// trace may span several basic blocks and unroll small loops up to the op
/// cap.
struct Trace {
  gva_t entry = 0;
  std::vector<MicroOp> ops;
  std::vector<u64> pages;  // sorted, distinct guest pages holding trace bytes
};

/// Decode-until-branch translation. `stop_pc` (exclusive, 0 = none) lets
/// the caller clamp the trace at a cfg::Cfg block boundary when a static
/// CFG for the module is already available. `modules` resolves kCallImp
/// import slots at translation time; an unresolvable import ends the trace
/// *before* the call so the interpreter can raise the exact fault.
/// Returns nullptr when not even one instruction decodes (unfetchable or
/// malformed first word).
std::unique_ptr<Trace> translate_block(const mem::AddressSpace& mem,
                                       const std::vector<LoadedModule>& modules, gva_t entry,
                                       gva_t stop_pc, size_t max_ops);

/// Entry-pc -> Trace map with per-page invalidation. Invalidation is
/// deferred-safe: the Machine never frees a trace while executing it (the
/// write watcher only records dirty pages; traces are reaped on the next
/// trace lookup).
class TraceCache {
 public:
  TraceCache() {
    // Sized for a loaded target (a few thousand blocks): growth rehashes of
    // a near-full table showed up in profiles.
    traces_.reserve(4096);
    page_entries_.reserve(1024);
  }

  const Trace* lookup(gva_t pc) const {
    auto it = traces_.find(pc);
    return it == traces_.end() ? nullptr : it->second.get();
  }

  const Trace* insert(std::unique_ptr<Trace> t);

  /// Drop every trace overlapping `page_no`. Conservative: an entry listed
  /// under a page it no longer covers is simply skipped.
  void invalidate_page(u64 page_no);

  void clear();

  size_t size() const { return traces_.size(); }
  u64 translated_ops() const { return translated_ops_; }

 private:
  std::unordered_map<gva_t, std::unique_ptr<Trace>> traces_;
  std::unordered_map<u64, std::vector<gva_t>> page_entries_;  // page -> entry pcs
  u64 translated_ops_ = 0;
};

}  // namespace crp::vm
