// Loaded-module bookkeeping: where each image landed under ASLR, resolved
// import slots, and scope-table lookup against runtime addresses.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "isa/image.h"
#include "util/common.h"

namespace crp::vm {

struct LoadedModule {
  std::shared_ptr<const isa::Image> image;
  gva_t base = 0;                    // base of first section
  std::vector<gva_t> section_base;   // runtime base per section
  std::vector<gva_t> import_addr;    // resolved address per import (0 = unresolved)

  gva_t code_base() const;
  gva_t code_end() const;
  bool contains_code(gva_t addr) const;

  /// Runtime address of a code-section offset.
  gva_t code_addr(u64 offset) const { return code_base() + offset; }

  /// Runtime address of an exported function, or 0.
  gva_t export_addr(const std::string& name) const;

  /// Runtime address of a named symbol (code or data), or 0.
  gva_t symbol_addr(const std::string& name) const;

  /// Scope entries whose guarded range contains `pc`, innermost (smallest)
  /// first — the dispatch order for nested __try blocks.
  std::vector<const isa::ScopeEntry*> scopes_at(gva_t pc) const;
};

}  // namespace crp::vm
