// CPU register file and flags for one MiniVM hardware thread.
#pragma once

#include <array>

#include "isa/isa.h"
#include "util/common.h"

namespace crp::vm {

struct Cpu {
  std::array<u64, isa::kNumRegs> regs{};
  u64 pc = 0;
  bool zf = false, sf = false, cf = false, of = false;

  u64& reg(isa::Reg r) { return regs[static_cast<u8>(r)]; }
  u64 reg(isa::Reg r) const { return regs[static_cast<u8>(r)]; }

  u64& sp() { return reg(isa::Reg::SP); }
  u64 sp() const { return reg(isa::Reg::SP); }

  /// Pack flags into the low nibble (used by context save/restore).
  u64 flags_word() const {
    return (zf ? 1u : 0u) | (sf ? 2u : 0u) | (cf ? 4u : 0u) | (of ? 8u : 0u);
  }
  void set_flags_word(u64 w) {
    zf = (w & 1) != 0;
    sf = (w & 2) != 0;
    cf = (w & 4) != 0;
    of = (w & 8) != 0;
  }

  /// Evaluate a condition code against the current flags (x86-style).
  bool eval(isa::Cond c) const {
    using isa::Cond;
    switch (c) {
      case Cond::kEq: return zf;
      case Cond::kNe: return !zf;
      case Cond::kLt: return sf != of;
      case Cond::kGe: return sf == of;
      case Cond::kLe: return zf || sf != of;
      case Cond::kGt: return !zf && sf == of;
      case Cond::kUlt: return cf;
      case Cond::kUge: return !cf;
      case Cond::kUle: return cf || zf;
      case Cond::kUgt: return !cf && !zf;
      case Cond::kCount: break;
    }
    return false;
  }
};

}  // namespace crp::vm
