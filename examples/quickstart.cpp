// Quickstart: discover crash-resistant primitives in one target.
//
// Pipeline shown end-to-end on nginx_sim:
//   1. instantiate the target in a simulated kernel,
//   2. run its test-suite workload under byte-granular taint tracking,
//   3. verify every candidate by corrupting the pointer and watching both
//      the process and the *service*,
//   4. print the verdicts.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "analysis/report.h"
#include "analysis/syscall_scanner.h"
#include "targets/nginx.h"

int main() {
  using namespace crp;

  printf("CRProbe quickstart — crash-resistant primitive discovery\n");
  printf("=========================================================\n\n");

  analysis::TargetProgram target = targets::make_nginx();
  printf("Target: %s (Linux personality, port %u)\n\n", target.name.c_str(),
         targets::kNginxPort);

  analysis::SyscallScanner scanner(target);

  printf("[1/2] discovery: running the test suite under taint tracking...\n");
  analysis::SyscallScanResult result = scanner.discover();
  printf("      %llu syscalls traced, %zu EFAULT-capable syscalls observed,\n",
         static_cast<unsigned long long>(result.syscalls_traced), result.observed.size());
  printf("      %zu pointer-argument candidates recorded\n\n", result.candidates.size());

  printf("[2/2] verification: corrupting each candidate pointer and checking\n");
  printf("      process + service health (fresh instance per candidate)...\n\n");
  for (analysis::Candidate& c : result.candidates) scanner.verify(c);

  printf("%s\n", analysis::render_candidates(result.candidates).c_str());

  int usable = 0;
  for (const auto& c : result.candidates)
    usable += c.verdict == analysis::Verdict::kUsable ? 1 : 0;
  printf("==> %d usable crash-resistant primitive(s) found.\n", usable);
  printf("    An attacker can probe this server's address space with ZERO crashes.\n");
  return usable > 0 ? 0 : 1;
}
