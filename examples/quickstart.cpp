// Quickstart: discover crash-resistant primitives in one target.
//
// Pipeline shown end-to-end on nginx_sim, as the staged campaign engine
// runs it (the same code path every bench uses):
//   1. pick the subject from the TargetRegistry,
//   2. TaintTraceStage — run its test-suite workload under byte-granular
//      taint tracking,
//   3. SyscallCandidateStage + VerifyStage — corrupt every candidate
//      pointer and watch both the process and the *service*,
//   4. print the verdicts.
//
// Build & run:  ./build/examples/quickstart
// (CRP_CACHE_DIR=<dir> makes a second run warm; CRP_CACHE=0 disables.)

#include <cstdio>

#include "pipeline/campaign.h"
#include "targets/nginx.h"

int main() {
  using namespace crp;

  printf("CRProbe quickstart — crash-resistant primitive discovery\n");
  printf("=========================================================\n\n");

  pipeline::TargetRegistry reg = pipeline::TargetRegistry::builtin();
  const pipeline::TargetSpec* spec = reg.find("server/nginx_sim");
  CRP_CHECK(spec != nullptr);
  analysis::TargetProgram target = spec->make_program();
  printf("Target: %s (Linux personality, port %u)\n\n", target.name.c_str(),
         targets::kNginxPort);

  pipeline::Campaign campaign;

  printf("[1/2] discovery: running the test suite under taint tracking...\n");
  pipeline::ServerScan scan = campaign.scan_program(target);
  const analysis::SyscallScanResult& result = scan.result;
  printf("      %llu syscalls traced, %zu EFAULT-capable syscalls observed,\n",
         static_cast<unsigned long long>(result.syscalls_traced), result.observed.size());
  printf("      %zu pointer-argument candidates recorded\n\n", result.candidates.size());

  printf("[2/2] verification: corrupting each candidate pointer and checking\n");
  printf("      process + service health (fresh instance per candidate)...\n\n");

  printf("%s\n", pipeline::ReportStage::candidates(result.candidates).c_str());

  int usable = 0;
  for (const auto& c : result.candidates)
    usable += c.verdict == analysis::Verdict::kUsable ? 1 : 0;
  printf("==> %d usable crash-resistant primitive(s) found.\n", usable);
  printf("    An attacker can probe this server's address space with ZERO crashes.\n");
  return usable > 0 ? 0 : 1;
}
