// inspect_image: objdump-style viewer for MVX binaries — the static side of
// CRProbe as a standalone tool.
//
//   ./build/examples/inspect_image                # generate + inspect a demo DLL
//   ./build/examples/inspect_image file.mvx       # inspect an MVX binary
//   ./build/examples/inspect_image file.s         # assemble + inspect sources
//   ./build/examples/inspect_image --emit file.mvx  # write the demo DLL to disk
//
// Shows: sections, symbols, exports, the exception directory (scope table),
// a recursive-traversal disassembly, the per-filter symbolic-execution
// verdicts, and the §VII-B guard audit.

#include <cstdio>
#include <fstream>
#include <vector>

#include "analysis/guard_audit.h"
#include "analysis/seh_analysis.h"
#include "cfg/cfg.h"
#include "isa/asm_text.h"
#include "isa/image.h"
#include "targets/dll_corpus.h"
#include "util/hexdump.h"

namespace {

using namespace crp;

isa::Image demo_image() {
  targets::DllSpec spec{"demo_dll", isa::Machine::kX64, 8, 3, 0, 5, 2};
  return *targets::generate_dll(spec, 0xD3370).image;
}

void inspect(const isa::Image& img) {
  printf("image: %s  (%s, %s)\n", img.name.c_str(), img.is_dll ? "dll" : "exe",
         img.machine == isa::Machine::kX64 ? "x64" : "x32");
  printf("entry: 0x%llx   mapped size: %s\n\n",
         static_cast<unsigned long long>(img.entry),
         human_size(img.mapped_size()).c_str());

  printf("sections:\n");
  for (const auto& s : img.sections)
    printf("  %-8s %6zu bytes  %s%s\n", s.name.c_str(), s.bytes.size(),
           s.writable ? "W" : "-", s.executable ? "X" : "-");

  printf("\nexports (%zu):\n", img.exports.size());
  for (const auto& e : img.exports)
    printf("  0x%06llx  %s\n", static_cast<unsigned long long>(e.offset), e.name.c_str());

  printf("\nexception directory (%zu scope entries):\n", img.scopes.size());
  for (const auto& sc : img.scopes) {
    printf("  [0x%06llx, 0x%06llx)  filter=%-10s handler=0x%06llx\n",
           static_cast<unsigned long long>(sc.begin),
           static_cast<unsigned long long>(sc.end),
           sc.filter == isa::kFilterCatchAll
               ? "CATCH-ALL"
               : strf("0x%06llx", static_cast<unsigned long long>(sc.filter)).c_str(),
           static_cast<unsigned long long>(sc.handler));
  }

  // Symbolic classification of the filters.
  analysis::SehExtractor ex;
  ex.add_image(std::make_shared<isa::Image>(img));
  analysis::FilterClassifier fc;
  auto filters = fc.classify_all(ex);
  printf("\nfilter verdicts (symbolic execution + SAT):\n");
  for (const auto& f : filters) {
    printf("  %-10s %s  (%zu paths, used by %zu handlers)\n",
           f.offset == isa::kFilterCatchAll
               ? "CATCH-ALL"
               : strf("0x%06llx", static_cast<unsigned long long>(f.offset)).c_str(),
           analysis::filter_verdict_name(f.verdict), f.paths_explored, f.handlers_using);
  }

  // §VII-B guard audit.
  auto audit = analysis::audit_guards(ex, filters);
  printf("\nguard audit: %zu deref-guard candidates, %zu gratuitous, %zu narrow\n",
         audit.deref_guards, audit.gratuitous, audit.narrow);

  // Disassembly of the first couple of basic blocks per function.
  cfg::Cfg g = cfg::Cfg::build_all(img);
  printf("\ncfg: %zu basic blocks, %zu instructions, %zu function entries\n",
         g.blocks().size(), g.instruction_count(), g.function_entries().size());
  printf("\ndisassembly (first 24 reachable instructions):\n");
  int shown = 0;
  for (const auto& [off, bb] : g.blocks()) {
    for (const auto& [ioff, ins] : g.instructions_in(bb.begin, bb.end)) {
      printf("  %06llx:  %s\n", static_cast<unsigned long long>(ioff),
             isa::disasm(ins, ioff).c_str());
      if (++shown >= 24) return;
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace crp;
  if (argc >= 3 && std::string(argv[1]) == "--emit") {
    auto bytes = isa::write_image(demo_image());
    std::ofstream out(argv[2], std::ios::binary);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    printf("wrote %zu bytes to %s\n", bytes.size(), argv[2]);
    return 0;
  }
  if (argc >= 2) {
    std::string path = argv[1];
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      fprintf(stderr, "cannot open %s\n", path.c_str());
      return 1;
    }
    std::vector<u8> bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
    if (path.size() >= 2 && path.substr(path.size() - 2) == ".s") {
      std::string err;
      auto img = isa::assemble_text(
          std::string_view(reinterpret_cast<const char*>(bytes.data()), bytes.size()),
          &err);
      if (!img.has_value()) {
        fprintf(stderr, "assembly failed: %s\n", err.c_str());
        return 1;
      }
      inspect(*img);
      return 0;
    }
    auto img = isa::read_image(bytes);
    if (!img.has_value()) {
      fprintf(stderr, "%s is not a valid MVX image\n", path.c_str());
      return 1;
    }
    inspect(*img);
    return 0;
  }
  inspect(demo_image());
  return 0;
}
