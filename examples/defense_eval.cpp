// §VII countermeasure evaluation: run the IE-style probing attack against
// each proposed defense and report which attacks die.
//
//   1. baseline            — attack succeeds, zero crashes;
//   2. rate detection      — attack "succeeds" but trips the anomaly alarm;
//   3. mapped-only AVs     — the first unmapped probe kills the process.
//
// Build & run:  ./build/examples/defense_eval

#include <cstdio>

#include "analysis/report.h"
#include "defense/rate_detector.h"
#include "oracle/oracle.h"
#include "targets/browser.h"
#include "targets/common.h"

namespace {

struct Outcome {
  bool found = false;
  bool process_alive = true;
  bool alarmed = false;
  crp::u64 probes = 0;
};

Outcome run_attack(bool mapped_only, bool with_detector) {
  using namespace crp;
  os::Kernel kernel;
  targets::BrowserSim browser(kernel, {targets::BrowserSim::Kind::kIE, 0xDEF, 0});
  browser.proc().machine().set_mapped_only_av_policy(mapped_only);
  std::unique_ptr<defense::RateDetector> det;
  if (with_detector) det = std::make_unique<defense::RateDetector>(kernel, browser.proc());

  gva_t hidden = targets::plant_hidden_region(browser.proc(), 8 * 4096, 0x5AFE);
  oracle::SehProbeOracle oracle(browser);
  oracle::Scanner scanner(oracle);
  auto hit = scanner.hunt(hidden - 256 * 4096, hidden + 256 * 4096, 2500, 0xCA7);

  Outcome out;
  out.found = hit.has_value() && *hit >= hidden && *hit < hidden + 8 * 4096;
  out.process_alive = kernel.proc(browser.pid()).alive();
  out.alarmed = det != nullptr && det->alarmed();
  out.probes = scanner.stats().probes;
  return out;
}

void report(const char* name, const Outcome& o) {
  printf("%-22s probes=%-5llu found=%-3s alive=%-3s alarmed=%s\n", name,
         static_cast<unsigned long long>(o.probes), o.found ? "yes" : "no",
         o.process_alive ? "yes" : "no", o.alarmed ? "YES" : "no");
}

}  // namespace

int main() {
  printf("Defense evaluation (§VII): IE-style SEH probing attack\n");
  printf("=======================================================\n\n");

  report("baseline", run_attack(false, false));
  report("rate detector", run_attack(false, true));
  report("mapped-only AV policy", run_attack(true, false));

  printf("\nReading:\n");
  printf("  * baseline: crash resistance defeats information hiding outright;\n");
  printf("  * the rate detector cannot stop the attack but flags it loudly —\n");
  printf("    probing rates sit orders of magnitude above benign AV rates;\n");
  printf("  * the mapped-only policy makes the very first unmapped probe fatal,\n");
  printf("    restoring information hiding's original guarantee.\n");

  printf("\n%s", crp::analysis::render_metrics().c_str());
  return 0;
}
