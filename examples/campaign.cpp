// Whole-corpus campaign: run EVERY registered discovery subject through the
// class-appropriate funnel in one invocation — the end-to-end entry point
// the staged pipeline layer exists for.
//
//   linux-server     taint trace -> syscall candidates -> verify
//   managed-runtime  run -> signal-handler scan (ucontext-editing SIGSEGV)
//   browser          browse under trace -> SEH extract -> classify -> xref
//                    (+ VEH harvest for runtime-registered handlers)
//   dll-corpus       SEH extract -> classify (static only)
//   api-corpus       invalid-pointer fuzz -> traced call-site reduction
//
// Build & run:  ./build/examples/campaign
// Repeated runs with CRP_CACHE_DIR set are answered from the
// content-addressed ArtifactStore ([cached] below); CRP_CACHE=0 bypasses.
// CRP_PLAN=1 appends the exploit-plan epilogue to every funnel: synthesize
// an ExploitPlan from the verified evidence, replay it against a fresh
// target instance, and print the plan/replay lines per target.

#include <cstdio>
#include <cstdlib>

#include "obs/ledger.h"
#include "obs/obs.h"
#include "obs/serve.h"
#include "pipeline/campaign.h"

int main() {
  using namespace crp;

  printf("CRProbe campaign — every registered target, one pipeline\n");
  printf("=========================================================\n\n");

  // CRP_OBS_SERVE=port exposes live progress (watch with tools/crptop).
  obs::serve::maybe_start_from_env();

  pipeline::TargetRegistry reg = pipeline::TargetRegistry::builtin();
  pipeline::CampaignOptions copts;
  if (const char* p = std::getenv("CRP_PLAN"); p != nullptr && *p == '1')
    copts.plan = true;
  pipeline::Campaign campaign(copts);
  obs::Registry::global()
      .gauge("pipeline.campaign.targets_total")
      .set(static_cast<i64>(reg.all().size()));

  int total_primitives = 0;
  for (const pipeline::TargetSpec& spec : reg.all()) {
    printf("--- %-24s [%s]\n", spec.id.c_str(),
           pipeline::target_class_name(spec.cls));
    pipeline::TargetReport rep = campaign.run_target(spec);
    printf("    %s%s\n", rep.summary.c_str(), rep.cache_hit ? " [cached]" : "");
    for (const analysis::Candidate& c : rep.candidates) {
      if (c.verdict == analysis::Verdict::kUsable ||
          c.cls != analysis::PrimitiveClass::kSyscall)
        printf("    * %s\n", c.describe().c_str());
    }
    if (rep.has_plan) {
      printf("    plan: %s%s%s\n", plan::surface_name(rep.exploit_plan.surface),
             rep.exploit_plan.symex_confirmed ? " [symex]" : "",
             rep.plan_cache_hit ? " [cached]" : "");
      printf("    replay: %s\n", rep.plan_replay.summary().c_str());
    }
    total_primitives += rep.usable;
    printf("\n");
  }

  const pipeline::ArtifactStore& store = pipeline::ArtifactStore::global();
  printf("=========================================================\n");
  printf("%zu targets, %d crash-resistant primitives / recovery sites\n",
         reg.all().size(), total_primitives);
  printf("artifact cache: %llu hits, %llu misses, %llu stores\n",
         static_cast<unsigned long long>(store.hits()),
         static_cast<unsigned long long>(store.misses()),
         static_cast<unsigned long long>(store.stores()));

  // With a flight-recorder sink requested, machine-check the ledger before
  // exit: the zero-crash invariant per primitive plus the ledger/counter
  // cross-check. A FAIL here is a real bug, so it fails the process (CI
  // asserts on both the exit code and the PASS line).
  if (const char* p = std::getenv("CRP_LEDGER"); p != nullptr && *p != '\0') {
    obs::LedgerAudit audit =
        obs::audit_ledger(obs::Ledger::global(), &obs::Registry::global());
    printf("%s\n", audit.summary().c_str());
    if (!audit.ok()) return 1;
  }
  return 0;
}
