// Full Table-I-style discovery pipeline over all five server simulacra
// (Nginx, Cherokee, Lighttpd, Memcached, PostgreSQL), with per-candidate
// narration — the expanded version of what bench_table1 prints.
//
// Thin driver over the pipeline layer: subjects come from the
// TargetRegistry, each scan runs through the Campaign's staged funnel, and
// the trailing metrics dump now includes the `pipeline.stage.*` and
// `pipeline.cache.*` series the campaign publishes.
//
// Build & run:  ./build/examples/discover_servers

#include <cstdio>
#include <map>

#include "analysis/report.h"
#include "pipeline/campaign.h"

int main() {
  using namespace crp;

  pipeline::TargetRegistry reg = pipeline::TargetRegistry::builtin();
  pipeline::Campaign campaign;

  std::map<std::string, analysis::SyscallScanResult> results;
  std::vector<std::string> names;

  for (const pipeline::TargetSpec* spec :
       reg.of_class(pipeline::TargetClass::kLinuxServer)) {
    pipeline::ServerScan scan = campaign.scan_target(*spec);
    printf("=== %s ===\n", scan.name.c_str());
    printf("  observed %zu EFAULT-capable syscalls on the workload path\n",
           scan.result.observed.size());
    for (const analysis::Candidate& c : scan.result.candidates)
      printf("  %s\n", c.describe().c_str());
    names.push_back(scan.name);
    results[scan.name] = std::move(scan.result);
    printf("\n");
  }

  printf("Table I — syscall candidate matrix\n");
  printf("  (+) usable primitive   FP false positive   +- observed/invalid   . unseen\n\n");
  printf("%s\n", pipeline::ReportStage::table1(names, results).c_str());

  printf("Paper ground truth (§V-A): recv@nginx, epoll_wait@cherokee,\n");
  printf("read@lighttpd, read@memcached (+ epoll_wait@memcached as the false\n");
  printf("positive), epoll_wait@postgresql.\n");

  printf("\n%s", analysis::render_metrics().c_str());
  return 0;
}
