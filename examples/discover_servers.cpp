// Full Table-I-style discovery pipeline over all five server simulacra
// (Nginx, Cherokee, Lighttpd, Memcached, PostgreSQL), with per-candidate
// narration — the expanded version of what bench_table1 prints.
//
// Build & run:  ./build/examples/discover_servers

#include <cstdio>
#include <map>

#include "analysis/report.h"
#include "analysis/syscall_scanner.h"
#include "targets/servers.h"

int main() {
  using namespace crp;

  std::map<std::string, analysis::SyscallScanResult> results;
  std::vector<std::string> names;

  for (analysis::TargetProgram& target : targets::all_servers()) {
    printf("=== %s ===\n", target.name.c_str());
    analysis::SyscallScanner scanner(target);
    analysis::SyscallScanResult res = scanner.discover();
    printf("  observed %zu EFAULT-capable syscalls on the workload path\n",
           res.observed.size());
    for (analysis::Candidate& c : res.candidates) {
      scanner.verify(c);
      printf("  %s\n", c.describe().c_str());
    }
    names.push_back(target.name);
    results[target.name] = std::move(res);
    printf("\n");
  }

  printf("Table I — syscall candidate matrix\n");
  printf("  (+) usable primitive   FP false positive   +- observed/invalid   . unseen\n\n");
  printf("%s\n", analysis::render_table1(names, results).c_str());

  printf("Paper ground truth (§V-A): recv@nginx, epoll_wait@cherokee,\n");
  printf("read@lighttpd, read@memcached (+ epoll_wait@memcached as the false\n");
  printf("positive), epoll_wait@postgresql.\n");

  printf("\n%s", analysis::render_metrics().c_str());
  return 0;
}
