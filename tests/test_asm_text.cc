#include <gtest/gtest.h>

#include <memory>

#include "isa/asm_text.h"
#include "os/kernel.h"

namespace crp::isa {
namespace {

const char* kHello = R"(
.image hello
; compute 6*7+100, exit with it
.entry main
main:
    movi r1, 6
    movi r2, 7
    mul r1, r2
    addi r1, 100
    movi r0, 24        ; exit_group
    syscall
)";

TEST(AsmText, AssemblesAndRuns) {
  std::string err;
  auto img = assemble_text(kHello, &err);
  ASSERT_TRUE(img.has_value()) << err;
  EXPECT_EQ(img->name, "hello");
  os::Kernel k;
  int pid = k.create_process("hello", vm::Personality::kLinux, 3);
  k.proc(pid).load(std::make_shared<Image>(*img));
  k.start_process(pid);
  k.run(10000);
  EXPECT_FALSE(k.proc(pid).alive());
  EXPECT_EQ(k.proc(pid).exit_info().code, 142);
}

TEST(AsmText, LabelsBranchesAndMemory) {
  const char* src = R"(
.image loops
.entry main
main:
    leapc r2, counter
    movi r3, 0
loop:
    addi r3, 1
    cmpi r3, 5
    jne loop
    store8 [r2+0], r3
    load8 r1, [r2]
    movi r0, 24
    syscall
.data
counter: .u64 0
)";
  std::string err;
  auto img = assemble_text(src, &err);
  ASSERT_TRUE(img.has_value()) << err;
  os::Kernel k;
  int pid = k.create_process("loops", vm::Personality::kLinux, 3);
  k.proc(pid).load(std::make_shared<Image>(*img));
  k.start_process(pid);
  k.run(10000);
  EXPECT_EQ(k.proc(pid).exit_info().code, 5);
}

TEST(AsmText, ScopesExportsAndDll) {
  const char* src = R"(
.image mylib
.dll
.machine x32
guarded:
tb: load8 r1, [r2+16]
te: ret
h:  movi r0, -1
    ret
flt:
    cmpi r1, 0xC0000005
    jeq yes
    movi r0, 0
    ret
yes:
    movi r0, 1
    ret
.export do_guarded, guarded
.scope tb, te, flt, h
.scope tb, te, @catchall, h
)";
  std::string err;
  auto img = assemble_text(src, &err);
  ASSERT_TRUE(img.has_value()) << err;
  EXPECT_TRUE(img->is_dll);
  EXPECT_EQ(img->machine, Machine::kX32);
  ASSERT_EQ(img->scopes.size(), 2u);
  EXPECT_NE(img->scopes[0].filter, kFilterCatchAll);
  EXPECT_EQ(img->scopes[1].filter, kFilterCatchAll);
  ASSERT_NE(img->find_export("do_guarded"), nullptr);
}

TEST(AsmText, DataDirectives) {
  const char* src = R"(
.image d
.entry e
e:  halt
.data
msg:  .asciz "hi\n"
raw:  .bytes de ad be ef
pad:  .zero 32
num:  .u64 0x1122334455667788
)";
  std::string err;
  auto img = assemble_text(src, &err);
  ASSERT_TRUE(img.has_value()) << err;
  const Section& data = img->sections[1];
  const Symbol* msg = img->find_symbol("msg");
  const Symbol* raw = img->find_symbol("raw");
  const Symbol* num = img->find_symbol("num");
  ASSERT_TRUE(msg && raw && num);
  EXPECT_EQ(data.bytes[msg->offset], 'h');
  EXPECT_EQ(data.bytes[msg->offset + 2], '\n');
  EXPECT_EQ(data.bytes[msg->offset + 3], 0);
  EXPECT_EQ(data.bytes[raw->offset], 0xde);
  EXPECT_EQ(data.bytes[raw->offset + 3], 0xef);
  EXPECT_EQ(data.bytes[num->offset], 0x88);
  EXPECT_EQ(data.bytes[num->offset + 7], 0x11);
}

TEST(AsmText, CallImportSyntax) {
  const char* src = R"(
.image app
.entry e
e:  callimp ntdll_sim!EnterCriticalSection
    halt
)";
  auto img = assemble_text(src);
  ASSERT_TRUE(img.has_value());
  ASSERT_EQ(img->imports.size(), 1u);
  EXPECT_EQ(img->imports[0].module, "ntdll_sim");
  EXPECT_EQ(img->imports[0].symbol, "EnterCriticalSection");
}

struct BadCase {
  const char* name;
  const char* src;
  const char* want;  // substring of the diagnostic
};

class AsmTextErrors : public ::testing::TestWithParam<BadCase> {};

TEST_P(AsmTextErrors, Diagnoses) {
  std::string err;
  auto img = assemble_text(GetParam().src, &err);
  EXPECT_FALSE(img.has_value());
  EXPECT_NE(err.find(GetParam().want), std::string::npos) << err;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, AsmTextErrors,
    ::testing::Values(
        BadCase{"bad_reg", ".entry e\ne: mov r99, r1\nhalt", "bad register"},
        BadCase{"bad_mnemonic", ".entry e\ne: frobnicate r1\n", "unknown mnemonic"},
        BadCase{"bad_width", ".entry e\ne: load3 r1, [r2]\n", "bad load width"},
        BadCase{"bad_imm", ".entry e\ne: movi r1, xyz\n", "bad immediate"},
        BadCase{"bad_mem", ".entry e\ne: load8 r1, r2\n", "bad memory operand"},
        BadCase{"bad_dir", ".bogus\n", "unknown directive"},
        BadCase{"shift_range", ".entry e\ne: shli r1, 99\n", "out of range"},
        BadCase{"data_noname", ".entry e\ne: halt\n.data\n.u64 5\n", "needs a name"}),
    [](const auto& info) { return std::string(info.param.name); });

TEST(AsmText, WholeFileRoundTripThroughImageFormat) {
  std::string err;
  auto img = assemble_text(kHello, &err);
  ASSERT_TRUE(img.has_value()) << err;
  auto back = read_image(write_image(*img));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->sections[0].bytes, img->sections[0].bytes);
}

}  // namespace
}  // namespace crp::isa
