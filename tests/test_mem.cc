#include <gtest/gtest.h>

#include "mem/address_space.h"
#include "mem/layout.h"

namespace crp::mem {
namespace {

TEST(AddressSpace, MapAndCheck) {
  AddressSpace as;
  EXPECT_TRUE(as.map(0x10000, 8192, kPermR | kPermW));
  EXPECT_TRUE(as.is_mapped(0x10000));
  EXPECT_TRUE(as.is_mapped(0x11fff));
  EXPECT_FALSE(as.is_mapped(0x12000));
  EXPECT_EQ(as.perms_of(0x10000), kPermR | kPermW);
  EXPECT_EQ(as.perms_of(0x5000), kPermNone);
  EXPECT_EQ(as.page_count(), 2u);
}

TEST(AddressSpace, MapRejectsOverlap) {
  AddressSpace as;
  EXPECT_TRUE(as.map(0x10000, 4096, kPermR));
  EXPECT_FALSE(as.map(0x10000, 4096, kPermR));
  EXPECT_FALSE(as.map(0xf000, 8192, kPermR));  // covers an existing page
  EXPECT_TRUE(as.map(0x11000, 4096, kPermR));
}

TEST(AddressSpace, MapRejectsZeroAndOverflow) {
  AddressSpace as;
  EXPECT_FALSE(as.map(0x1000, 0, kPermR));
  EXPECT_FALSE(as.map(~0ull - 100, 4096, kPermR));
}

TEST(AddressSpace, UnmapRange) {
  AddressSpace as;
  as.map(0x10000, 3 * 4096, kPermR);
  EXPECT_TRUE(as.unmap(0x11000, 4096));
  EXPECT_TRUE(as.is_mapped(0x10000));
  EXPECT_FALSE(as.is_mapped(0x11000));
  EXPECT_TRUE(as.is_mapped(0x12000));
  EXPECT_FALSE(as.unmap(0x11000, 4096));  // nothing left there
}

TEST(AddressSpace, ProtectAllOrNothing) {
  AddressSpace as;
  as.map(0x10000, 4096, kPermR | kPermW);
  // Range spilling into an unmapped page fails with no change.
  EXPECT_FALSE(as.protect(0x10000, 8192, kPermR));
  EXPECT_EQ(as.perms_of(0x10000), kPermR | kPermW);
  EXPECT_TRUE(as.protect(0x10000, 4096, kPermR));
  EXPECT_EQ(as.perms_of(0x10000), kPermR);
}

TEST(AddressSpace, ReadWriteRoundTrip) {
  AddressSpace as;
  as.map(0x10000, 4096, kPermR | kPermW);
  std::vector<u8> data = {1, 2, 3, 4, 5};
  EXPECT_TRUE(as.write(0x10000, data).ok);
  std::vector<u8> back(5);
  EXPECT_TRUE(as.read(0x10000, back).ok);
  EXPECT_EQ(back, data);
}

TEST(AddressSpace, FaultReportsAddressAndKind) {
  AddressSpace as;
  as.map(0x10000, 4096, kPermR | kPermW);
  std::vector<u8> buf(16);
  // Read crossing into unmapped page: fault at the first unmapped byte.
  AccessResult r = as.read(0x10ff8, buf);
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.fault_addr, 0x11000u);
  EXPECT_EQ(r.kind, Access::kRead);
  // Entirely unmapped: fault at the access address itself.
  r = as.write(0x50000, buf);
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.fault_addr, 0x50000u);
  EXPECT_EQ(r.kind, Access::kWrite);
}

TEST(AddressSpace, PermissionFaults) {
  AddressSpace as;
  as.map(0x10000, 4096, kPermR);
  std::vector<u8> buf(4);
  EXPECT_TRUE(as.read(0x10000, buf).ok);
  EXPECT_FALSE(as.write(0x10000, buf).ok);
  EXPECT_FALSE(as.fetch(0x10000, buf).ok);
  as.protect(0x10000, 4096, kPermR | kPermX);
  EXPECT_TRUE(as.fetch(0x10000, buf).ok);
}

TEST(AddressSpace, FailedAccessHasNoPartialEffect) {
  AddressSpace as;
  as.map(0x10000, 4096, kPermR | kPermW);
  std::vector<u8> ones(16, 0xff);
  // Write crossing into unmapped memory must not touch the mapped part.
  EXPECT_FALSE(as.write(0x10ff8, ones).ok);
  u64 v = 0xabc;
  EXPECT_TRUE(as.read_uint(0x10ff8, 8, &v).ok);
  EXPECT_EQ(v, 0u);
}

TEST(AddressSpace, TypedAccessWidths) {
  AddressSpace as;
  as.map(0x10000, 4096, kPermR | kPermW);
  EXPECT_TRUE(as.write_uint(0x10010, 8, 0x1122334455667788ull).ok);
  u64 v = 0;
  EXPECT_TRUE(as.read_uint(0x10010, 4, &v).ok);
  EXPECT_EQ(v, 0x55667788u);
  EXPECT_TRUE(as.read_uint(0x10014, 2, &v).ok);
  EXPECT_EQ(v, 0x3344u);
  EXPECT_TRUE(as.read_uint(0x10017, 1, &v).ok);
  EXPECT_EQ(v, 0x11u);
}

TEST(AddressSpace, PeekPokeIgnorePerms) {
  AddressSpace as;
  as.map(0x10000, 4096, kPermNone);
  EXPECT_TRUE(as.poke_u64(0x10000, 42));
  u64 v = 0;
  EXPECT_TRUE(as.peek_u64(0x10000, &v));
  EXPECT_EQ(v, 42u);
  EXPECT_FALSE(as.poke_u64(0x90000, 1));
  EXPECT_FALSE(as.peek_u64(0x90000, &v));
}

TEST(AddressSpace, RegionsCoalesce) {
  AddressSpace as;
  as.map(0x10000, 8192, kPermR);
  as.map(0x12000, 4096, kPermR | kPermW);
  as.map(0x20000, 4096, kPermR);
  auto regions = as.regions();
  ASSERT_EQ(regions.size(), 3u);
  EXPECT_EQ(regions[0].begin, 0x10000u);
  EXPECT_EQ(regions[0].end, 0x12000u);
  EXPECT_EQ(regions[1].begin, 0x12000u);
  EXPECT_EQ(regions[2].begin, 0x20000u);
}

// Property sweep: an access of every width at every offset near a page
// boundary faults iff it touches the unmapped page.
class BoundaryAccess : public ::testing::TestWithParam<int> {};

TEST_P(BoundaryAccess, FaultIffCrossing) {
  int width = GetParam();
  AddressSpace as;
  as.map(0x10000, 4096, kPermR | kPermW);
  for (int back = 0; back <= width + 2; ++back) {
    gva_t addr = 0x11000 - static_cast<u64>(back);
    u64 v;
    bool expect_ok = back >= width;
    EXPECT_EQ(as.read_uint(addr, static_cast<u8>(width), &v).ok, expect_ok)
        << "width=" << width << " back=" << back;
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, BoundaryAccess, ::testing::Values(1, 2, 4, 8));

TEST(AslrLayout, PlacementsDoNotOverlap) {
  AslrLayout layout(AslrConfig{}, 42);
  std::vector<std::pair<gva_t, u64>> placed;
  for (int i = 0; i < 50; ++i) {
    u64 size = 4096 * (1 + static_cast<u64>(i % 7));
    gva_t base = layout.place(RegionKind::kHeap, size, strf("r%d", i));
    for (auto [b, s] : placed) {
      EXPECT_TRUE(base + size <= b || b + s <= base) << "overlap at " << i;
    }
    placed.emplace_back(base, size);
  }
}

TEST(AslrLayout, DifferentSeedsDifferentBases) {
  AslrLayout a(AslrConfig{}, 1), b(AslrConfig{}, 2);
  EXPECT_NE(a.place(RegionKind::kImage, 4096, "x"), b.place(RegionKind::kImage, 4096, "x"));
}

TEST(AslrLayout, GroundTruthLookup) {
  AslrLayout layout(AslrConfig{}, 7);
  gva_t base = layout.place(RegionKind::kHidden, 8192, "safestack");
  const auto* p = layout.find(base + 100);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->kind, RegionKind::kHidden);
  EXPECT_EQ(p->name, "safestack");
  EXPECT_EQ(layout.find(base - 1), nullptr);
}

TEST(AslrLayout, BasesArePageAligned) {
  AslrLayout layout(AslrConfig{}, 9);
  for (int i = 0; i < 20; ++i)
    EXPECT_EQ(layout.place(RegionKind::kStack, 4096, "s") % kPageSize, 0u);
}

// A kPermNone guard page between two mapped regions: every access kind
// faults on the guard (reporting the guard's address), while both neighbors
// stay reachable — the probe pattern oracles aim at region skirts.
TEST(AddressSpace, GuardPageBetweenRegionsFaultsButNeighborsWork) {
  AddressSpace as;
  ASSERT_TRUE(as.map(0x10000, 4096, kPermR | kPermW));
  ASSERT_TRUE(as.map(0x11000, 4096, kPermNone));  // guard
  ASSERT_TRUE(as.map(0x12000, 4096, kPermR | kPermW));

  u8 buf[8] = {};
  EXPECT_TRUE(as.read(0x10ff8, buf).ok);
  EXPECT_TRUE(as.read(0x12000, buf).ok);

  AccessResult r = as.read(0x11000, buf);
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.fault_addr, 0x11000u);
  EXPECT_FALSE(as.write(0x11ff8, buf).ok);
  // A straddling read faults on the guard page, not the valid prefix.
  r = as.read(0x10ffc, buf);
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.fault_addr, 0x11000u);
  // Raw peek/poke ignore perms but still require the page to exist.
  EXPECT_TRUE(as.peek(0x11000, buf));  // guard is mapped storage
  EXPECT_TRUE(as.check_range(0x11000, 8, 0));
  EXPECT_FALSE(as.check_range(0x11000, 8, kPermR));
}

// Regression for the u64-wrap hole: a range ending past 2^64 used to skip
// poke()'s validation loop entirely (end overflowed to a small value, so
// `p < end` was vacuously false) and then dereference an unmapped page —
// a host crash reachable from guest-chosen top-of-space addresses.
TEST(AddressSpace, TopOfSpaceWrappingRangesAreRejected) {
  AddressSpace as;
  ASSERT_TRUE(as.map(0x10000, 4096, kPermR | kPermW));

  u8 buf[16] = {};
  for (gva_t addr : {~0ull - 7, ~0ull - 1, ~0ull}) {
    EXPECT_FALSE(as.peek(addr, buf)) << std::hex << addr;
    EXPECT_FALSE(as.poke(addr, buf)) << std::hex << addr;
    EXPECT_FALSE(as.check_range(addr, sizeof buf, 0)) << std::hex << addr;
    EXPECT_FALSE(as.read(addr, std::span<u8>(buf, sizeof buf)).ok) << std::hex << addr;
  }
  u64 v = 0;
  EXPECT_FALSE(as.peek_u64(~0ull - 3, &v));
  EXPECT_FALSE(as.poke_u64(~0ull - 3, 0x1234));
  // The exact top page is simply unmapped; probing it reports a clean fault.
  EXPECT_FALSE(as.read(~0ull - 4095, std::span<u8>(buf, 8)).ok);
}

}  // namespace
}  // namespace crp::mem
