#include <gtest/gtest.h>

#include "isa/assembler.h"
#include "symex/bitblast.h"
#include "symex/expr.h"
#include "symex/filter_exec.h"
#include "symex/sat.h"
#include "symex/solver.h"
#include "util/rng.h"
#include "vm/exception.h"

namespace crp::symex {
namespace {

using isa::Assembler;
using isa::Cond;
using isa::Reg;

TEST(Expr, ConstantFolding) {
  Ctx c;
  EXPECT_EQ(c.const_value(c.add(c.constant(2), c.constant(3))), 5u);
  EXPECT_EQ(c.const_value(c.sub(c.constant(2), c.constant(3))), ~0ull);
  EXPECT_EQ(c.const_value(c.mul(c.constant(7), c.constant(6))), 42u);
  EXPECT_EQ(c.const_value(c.band(c.constant(0xF0), c.constant(0x3C))), 0x30u);
  EXPECT_EQ(c.const_value(c.eq(c.constant(5), c.constant(5))), 1u);
  EXPECT_EQ(c.const_value(c.ult(c.constant(1), c.constant(2))), 1u);
  EXPECT_EQ(c.const_value(c.slt(c.constant(~0ull), c.constant(1))), 1u);  // -1 < 1
  EXPECT_EQ(c.const_value(c.lshr(c.constant(0x80), c.constant(4))), 8u);
  EXPECT_EQ(c.const_value(c.ashr(c.constant(0x8000000000000000ull), c.constant(63))), ~0ull);
}

TEST(Expr, WidthNarrowConstants) {
  Ctx c;
  EXPECT_EQ(c.const_value(c.constant(0x1ff, 8)), 0xffu);  // masked to width
  ExprRef x = c.constant(0xab, 8);
  EXPECT_EQ(c.const_value(c.zext(x, 16)), 0xabu);
  EXPECT_EQ(c.const_value(c.sext(x, 16)), 0xffabu);
  EXPECT_EQ(c.const_value(c.extract(c.constant(0x1234), 8, 8)), 0x12u);
  EXPECT_EQ(c.const_value(c.concat(c.constant(0x12, 8), c.constant(0x34, 8))), 0x1234u);
}

TEST(Expr, IdentitySimplifications) {
  Ctx c;
  ExprRef x = c.var("x");
  EXPECT_EQ(c.add(x, c.constant(0)), x);
  EXPECT_EQ(c.mul(x, c.constant(1)), x);
  EXPECT_EQ(c.const_value(c.mul(x, c.constant(0))), 0u);
  EXPECT_EQ(c.band(x, c.constant(~0ull)), x);
  EXPECT_EQ(c.const_value(c.bxor(x, x)), 0u);
  EXPECT_EQ(c.const_value(c.eq(x, x)), 1u);
  EXPECT_EQ(c.const_value(c.ult(x, x)), 0u);
}

TEST(Expr, HashConsing) {
  Ctx c;
  ExprRef x = c.var("x");
  ExprRef a = c.add(x, c.constant(5));
  ExprRef b = c.add(x, c.constant(5));
  EXPECT_EQ(a, b);
}

TEST(Expr, EvalMatchesSemantics) {
  Ctx c;
  ExprRef x = c.var("x");
  ExprRef y = c.var("y");
  ExprRef e = c.ite(c.ult(x, y), c.add(x, y), c.sub(x, y));
  std::unordered_map<u32, u64> m{{0, 3}, {1, 10}};
  EXPECT_EQ(c.eval(e, m), 13u);
  m = {{0, 10}, {1, 3}};
  EXPECT_EQ(c.eval(e, m), 7u);
}

TEST(Sat, TrivialSatAndUnsat) {
  SatSolver s;
  int a = s.new_var(), b = s.new_var();
  s.add_clause({a, b});
  s.add_clause({-a});
  EXPECT_EQ(s.solve(), SatResult::kSat);
  EXPECT_FALSE(s.model_value(a));
  EXPECT_TRUE(s.model_value(b));

  SatSolver u;
  int x = u.new_var();
  u.add_clause({x});
  u.add_clause({-x});
  EXPECT_EQ(u.solve(), SatResult::kUnsat);
}

TEST(Sat, EmptyClauseIsUnsat) {
  SatSolver s;
  s.new_var();
  s.add_clause({});
  EXPECT_EQ(s.solve(), SatResult::kUnsat);
}

TEST(Sat, PigeonholeUnsat) {
  // 4 pigeons, 3 holes: classic small UNSAT instance exercising learning.
  SatSolver s;
  int v[4][3];
  for (auto& row : v)
    for (auto& x : row) x = s.new_var();
  for (int p = 0; p < 4; ++p) s.add_clause({v[p][0], v[p][1], v[p][2]});
  for (int h = 0; h < 3; ++h)
    for (int p1 = 0; p1 < 4; ++p1)
      for (int p2 = p1 + 1; p2 < 4; ++p2) s.add_clause({-v[p1][h], -v[p2][h]});
  EXPECT_EQ(s.solve(), SatResult::kUnsat);
}

// Property: CDCL agrees with brute force on random small 3-SAT instances.
class SatRandom : public ::testing::TestWithParam<int> {};

TEST_P(SatRandom, AgreesWithBruteForce) {
  Rng rng(static_cast<u64>(GetParam()) * 1337 + 17);
  for (int trial = 0; trial < 30; ++trial) {
    int nvars = 3 + static_cast<int>(rng.below(8));       // 3..10 vars
    int nclauses = 3 + static_cast<int>(rng.below(40));   // 3..42 clauses
    std::vector<std::vector<int>> clauses;
    for (int i = 0; i < nclauses; ++i) {
      std::vector<int> cl;
      int len = 1 + static_cast<int>(rng.below(3));
      for (int j = 0; j < len; ++j) {
        int var = 1 + static_cast<int>(rng.below(static_cast<u64>(nvars)));
        cl.push_back(rng.chance(0.5) ? var : -var);
      }
      clauses.push_back(cl);
    }
    // Brute force.
    bool bf_sat = false;
    for (u64 m = 0; m < (1ull << nvars) && !bf_sat; ++m) {
      bool all = true;
      for (const auto& cl : clauses) {
        bool any = false;
        for (int l : cl) {
          bool val = (m >> (std::abs(l) - 1)) & 1;
          if ((l > 0) == val) {
            any = true;
            break;
          }
        }
        if (!any) {
          all = false;
          break;
        }
      }
      bf_sat = all;
    }
    // CDCL.
    SatSolver s;
    for (int v = 0; v < nvars; ++v) s.new_var();
    for (auto& cl : clauses) s.add_clause(cl);
    SatResult r = s.solve();
    ASSERT_NE(r, SatResult::kUnknown);
    EXPECT_EQ(r == SatResult::kSat, bf_sat) << "trial " << trial;
    if (r == SatResult::kSat) {
      // Verify the model actually satisfies the clauses.
      for (const auto& cl : clauses) {
        bool any = false;
        for (int l : cl) any |= (l > 0) == s.model_value(std::abs(l));
        EXPECT_TRUE(any);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SatRandom, ::testing::Range(0, 8));

TEST(Solver, LinearEquation) {
  // x + 3 == 10  =>  x == 7
  Ctx c;
  ExprRef x = c.var("x");
  Solver s(c);
  s.add(c.eq(c.add(x, c.constant(3)), c.constant(10)));
  ASSERT_EQ(s.check(), SatResult::kSat);
  EXPECT_EQ(s.model(x), 7u);
}

TEST(Solver, UnsatConjunction) {
  Ctx c;
  ExprRef x = c.var("x");
  Solver s(c);
  s.add(c.ult(x, c.constant(5)));
  s.add(c.ult(c.constant(10), x));
  EXPECT_EQ(s.check(), SatResult::kUnsat);
}

TEST(Solver, ConstantFalseShortCircuits) {
  Ctx c;
  Solver s(c);
  s.add(c.bool_const(false));
  EXPECT_EQ(s.check(), SatResult::kUnsat);
}

TEST(Solver, MaskedCompare) {
  // (x & 0xff) == 0xC5 && x u> 0xFFFF is satisfiable.
  Ctx c;
  ExprRef x = c.var("x");
  Solver s(c);
  s.add(c.eq(c.band(x, c.constant(0xff)), c.constant(0xC5)));
  s.add(c.ult(c.constant(0xFFFF), x));
  ASSERT_EQ(s.check(), SatResult::kSat);
  u64 m = s.model(x);
  EXPECT_EQ(m & 0xff, 0xC5u);
  EXPECT_GT(m, 0xFFFFu);
}

// Property: bit-blasted semantics match Ctx::eval on random expressions.
class BlastRandom : public ::testing::TestWithParam<int> {};

TEST_P(BlastRandom, ModelEvaluatesExpressionsConsistently) {
  Rng rng(static_cast<u64>(GetParam()) * 999 + 5);
  for (int trial = 0; trial < 12; ++trial) {
    Ctx c;
    ExprRef x = c.var("x");
    ExprRef y = c.var("y");
    // Build a random expression tree over x, y.
    std::vector<ExprRef> pool = {x, y, c.constant(rng.next()), c.constant(rng.below(256))};
    for (int i = 0; i < 12; ++i) {
      ExprRef a = pool[rng.below(pool.size())];
      ExprRef b = pool[rng.below(pool.size())];
      switch (rng.below(9)) {
        case 0: pool.push_back(c.add(a, b)); break;
        case 1: pool.push_back(c.sub(a, b)); break;
        case 2: pool.push_back(c.band(a, b)); break;
        case 3: pool.push_back(c.bor(a, b)); break;
        case 4: pool.push_back(c.bxor(a, b)); break;
        case 5: pool.push_back(c.bnot(a)); break;
        case 6: pool.push_back(c.shl(a, c.constant(rng.below(64)))); break;
        case 7: pool.push_back(c.lshr(a, c.constant(rng.below(64)))); break;
        case 8: pool.push_back(c.ite(c.ult(a, b), a, b)); break;
      }
    }
    ExprRef e = pool.back();
    ExprRef target = c.constant(rng.next());
    // Ask the solver for x,y with e == target OR prove none exist; if SAT,
    // the model must make eval(e) == target.
    Solver s(c);
    s.add(c.eq(e, target));
    SatResult r = s.check(1u << 20);
    if (r == SatResult::kSat) {
      auto model = s.full_model();
      EXPECT_EQ(c.eval(e, model), c.eval(target, model)) << "trial " << trial;
    }
    // UNSAT is fine too (target may be unreachable); kUnknown only on budget.
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BlastRandom, ::testing::Range(0, 6));

TEST(Blast, MulDivRemConsistency) {
  // q = a / b, r = a % b with b != 0 implies q*b + r == a (2w-bit exact) and
  // r < b. 8-bit width keeps the UNSAT proof tractable for the CDCL backend.
  Ctx c;
  ExprRef a = c.var("a", 8);
  ExprRef b = c.var("b", 8);
  Solver s(c);
  s.add(c.ne(b, c.constant(0, 8)));
  ExprRef q = c.udiv(a, b);
  ExprRef r = c.urem(a, b);
  ExprRef prod16 = c.mul(c.zext(q, 16), c.zext(b, 16));
  ExprRef sum16 = c.add(prod16, c.zext(r, 16));
  // Violation query must be UNSAT.
  s.add(c.lnot(c.land(c.eq(sum16, c.zext(a, 16)), c.ult(r, b))));
  EXPECT_EQ(s.check(1u << 21), SatResult::kUnsat);
}

TEST(Blast, DivRemConcreteSpotChecks) {
  // Concrete end-to-end: solver must find x with x / 7 == 5 && x % 7 == 3.
  Ctx c;
  ExprRef x = c.var("x", 16);
  Solver s(c);
  s.add(c.eq(c.udiv(x, c.constant(7, 16)), c.constant(5, 16)));
  s.add(c.eq(c.urem(x, c.constant(7, 16)), c.constant(3, 16)));
  ASSERT_EQ(s.check(), SatResult::kSat);
  EXPECT_EQ(s.model(x), 38u);
}

// ---- filter symbolic execution -------------------------------------------------

constexpr i64 kAv = static_cast<i64>(0xC0000005);

isa::Image av_only_filter_image() {
  Assembler a("dll");
  a.set_dll(true);
  a.label("filter");
  a.cmpi(Reg::R1, kAv);
  a.jcc(Cond::kEq, "yes");
  a.movi(Reg::R0, 0);
  a.ret();
  a.label("yes");
  a.movi(Reg::R0, 1);
  a.ret();
  return a.build();
}

/// Does any explored path return EXECUTE_HANDLER under exc_code == AV?
bool accepts_av(Ctx& c, FilterExecutor& fx, const FilterAnalysis& fa) {
  for (const auto& p : fa.paths) {
    Solver s(c);
    s.add(p.cond);
    s.add(c.eq(fx.exc_code(), c.constant(0xC0000005)));
    s.add(c.eq(p.ret, c.constant(kDispExecuteHandler)));
    if (s.check() == SatResult::kSat) return true;
  }
  return false;
}

TEST(FilterExec, AvOnlyFilterAcceptsAv) {
  Ctx c;
  isa::Image img = av_only_filter_image();
  FilterExecutor fx(c, img);
  u64 off = img.find_symbol("filter")->offset;
  FilterAnalysis fa = fx.explore(off);
  EXPECT_GE(fa.paths.size(), 2u);
  EXPECT_TRUE(accepts_av(c, fx, fa));
}

TEST(FilterExec, AvOnlyFilterRejectsAvOnlyWhenCodeDiffers) {
  // Verify the complementary query: a path returning EXECUTE_HANDLER with
  // exc_code != AV must be UNSAT for the AV-only filter.
  Ctx c;
  isa::Image img = av_only_filter_image();
  FilterExecutor fx(c, img);
  FilterAnalysis fa = fx.explore(img.find_symbol("filter")->offset);
  for (const auto& p : fa.paths) {
    Solver s(c);
    s.add(p.cond);
    s.add(c.ne(fx.exc_code(), c.constant(0xC0000005)));
    s.add(c.eq(p.ret, c.constant(kDispExecuteHandler)));
    EXPECT_EQ(s.check(), SatResult::kUnsat);
  }
}

TEST(FilterExec, RejectingFilterNeverAcceptsAv) {
  // Filter that only accepts divide-by-zero.
  Assembler a("dll");
  a.set_dll(true);
  a.label("filter");
  a.cmpi(Reg::R1, static_cast<i64>(0xC0000094));
  a.jcc(Cond::kEq, "yes");
  a.movi(Reg::R0, 0);
  a.ret();
  a.label("yes");
  a.movi(Reg::R0, 1);
  a.ret();
  isa::Image img = a.build();
  Ctx c;
  FilterExecutor fx(c, img);
  FilterAnalysis fa = fx.explore(img.find_symbol("filter")->offset);
  EXPECT_FALSE(accepts_av(c, fx, fa));
}

TEST(FilterExec, ExclusionListFilterAcceptsAv) {
  // Firefox-style (§VI-B): excludes breakpoints and illegal instruction,
  // handles everything else including AV.
  Assembler a("dll");
  a.set_dll(true);
  a.label("filter");
  a.cmpi(Reg::R1, static_cast<i64>(0x80000003));
  a.jcc(Cond::kEq, "no");
  a.cmpi(Reg::R1, static_cast<i64>(0xC000001D));
  a.jcc(Cond::kEq, "no");
  a.movi(Reg::R0, 1);
  a.ret();
  a.label("no");
  a.movi(Reg::R0, 0);
  a.ret();
  isa::Image img = a.build();
  Ctx c;
  FilterExecutor fx(c, img);
  FilterAnalysis fa = fx.explore(img.find_symbol("filter")->offset);
  EXPECT_TRUE(accepts_av(c, fx, fa));
}

TEST(FilterExec, FilterReadingRecordFields) {
  // Filter reads the exception code from the record (not R1) and accepts AV
  // only for read accesses (record+24 == 0).
  Assembler a("dll");
  a.set_dll(true);
  a.label("filter");
  a.load(Reg::R3, Reg::R2, 8, 0);   // code from record
  a.cmpi(Reg::R3, kAv);
  a.jcc(Cond::kNe, "no");
  a.load(Reg::R4, Reg::R2, 8, 24);  // access kind
  a.cmpi(Reg::R4, 0);
  a.jcc(Cond::kNe, "no");
  a.movi(Reg::R0, 1);
  a.ret();
  a.label("no");
  a.movi(Reg::R0, 0);
  a.ret();
  isa::Image img = a.build();
  Ctx c;
  FilterExecutor fx(c, img);
  FilterAnalysis fa = fx.explore(img.find_symbol("filter")->offset);
  // Accepting AV requires the record's code field — but our record code var
  // is independent from R1's exc_code var only if the executor models them
  // as the same variable. It does: record bytes [0..8) are exc_code.
  EXPECT_TRUE(accepts_av(c, fx, fa));
  // And with access == write (1), the same filter must reject.
  bool accepts_write = false;
  for (const auto& p : fa.paths) {
    Solver s(c);
    s.add(p.cond);
    s.add(c.eq(fx.exc_code(), c.constant(0xC0000005)));
    s.add(c.eq(fx.access_kind(), c.constant(1)));
    s.add(c.eq(p.ret, c.constant(kDispExecuteHandler)));
    if (s.check() == SatResult::kSat) accepts_write = true;
  }
  EXPECT_FALSE(accepts_write);
}

TEST(FilterExec, ConfigGatedFilterUsesStaticData) {
  // Filter consults a .data flag; statically 0 -> never accepts (the IE
  // post-security-update shape from §VII-A: our tool misses it, as the
  // paper's did).
  Assembler a("dll");
  a.set_dll(true);
  a.label("filter");
  a.lea_pc(Reg::R3, "cfg");
  a.load(Reg::R4, Reg::R3, 8);
  a.cmpi(Reg::R4, 0);
  a.jcc(Cond::kNe, "enabled");
  a.movi(Reg::R0, 0);
  a.ret();
  a.label("enabled");
  a.movi(Reg::R0, 1);
  a.ret();
  a.data_u64("cfg", 0);
  isa::Image img = a.build();
  Ctx c;
  FilterExecutor fx(c, img);
  FilterAnalysis fa = fx.explore(img.find_symbol("filter")->offset);
  EXPECT_FALSE(accepts_av(c, fx, fa));
}

TEST(FilterExec, ExternalCallMarksPath) {
  Assembler a("dll");
  a.set_dll(true);
  a.label("filter");
  a.call_import("config", "get_policy");
  a.ret();  // returns whatever the external call produced
  isa::Image img = a.build();
  Ctx c;
  FilterExecutor fx(c, img);
  FilterAnalysis fa = fx.explore(img.find_symbol("filter")->offset);
  ASSERT_EQ(fa.paths.size(), 1u);
  EXPECT_TRUE(fa.paths[0].external_call);
}

TEST(FilterExec, CallsAndStackWork) {
  // Filter delegating to an internal helper (call/ret round trip).
  Assembler a("dll");
  a.set_dll(true);
  a.label("filter");
  a.call("helper");
  a.ret();
  a.label("helper");
  a.cmpi(Reg::R1, kAv);
  a.jcc(Cond::kEq, "yes");
  a.movi(Reg::R0, 0);
  a.ret();
  a.label("yes");
  a.movi(Reg::R0, 1);
  a.ret();
  isa::Image img = a.build();
  Ctx c;
  FilterExecutor fx(c, img);
  FilterAnalysis fa = fx.explore(img.find_symbol("filter")->offset);
  EXPECT_TRUE(accepts_av(c, fx, fa));
}

TEST(FilterExec, LoopBudgetTruncates) {
  Assembler a("dll");
  a.set_dll(true);
  a.label("filter");
  a.label("spin");
  a.jmp("spin");
  isa::Image img = a.build();
  Ctx c;
  FilterExecutor fx(c, img);
  FilterAnalysis fa = fx.explore(img.find_symbol("filter")->offset, 8, 200);
  EXPECT_TRUE(fa.truncated);
  EXPECT_TRUE(fa.paths.empty());
}

}  // namespace
}  // namespace crp::symex

// Appended property coverage for the expression layer and solver.
namespace crp::symex {
namespace {

// Property: zext/sext/extract/concat round-trips agree with plain
// arithmetic for random widths and values.
class WidthOps : public ::testing::TestWithParam<int> {};

TEST_P(WidthOps, ExtractConcatRoundTrip) {
  Rng rng(static_cast<u64>(GetParam()) * 31 + 7);
  for (int trial = 0; trial < 40; ++trial) {
    Ctx c;
    u8 lo_w = static_cast<u8>(rng.range(1, 32));
    u8 hi_w = static_cast<u8>(rng.range(1, 32));
    u64 lo_v = rng.next() & ((lo_w >= 64 ? ~0ull : (1ull << lo_w) - 1));
    u64 hi_v = rng.next() & ((hi_w >= 64 ? ~0ull : (1ull << hi_w) - 1));
    ExprRef whole = c.concat(c.constant(hi_v, hi_w), c.constant(lo_v, lo_w));
    EXPECT_EQ(c.const_value(c.extract(whole, 0, lo_w)), lo_v);
    EXPECT_EQ(c.const_value(c.extract(whole, lo_w, hi_w)), hi_v);
  }
}

TEST_P(WidthOps, SextAgreesWithArithmetic) {
  Rng rng(static_cast<u64>(GetParam()) * 77 + 3);
  for (int trial = 0; trial < 40; ++trial) {
    Ctx c;
    u8 w = static_cast<u8>(rng.range(2, 32));
    u64 v = rng.next() & ((1ull << w) - 1);
    i64 as_signed = static_cast<i64>(v << (64 - w)) >> (64 - w);
    EXPECT_EQ(c.const_value(c.sext(c.constant(v, w), 64)),
              static_cast<u64>(as_signed));
    EXPECT_EQ(c.const_value(c.zext(c.constant(v, w), 64)), v);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WidthOps, ::testing::Range(0, 4));

// Property: for random concrete inputs, building an expression from
// constants folds to exactly the interpreter-style evaluation of the same
// expression built from variables.
class FoldVsEval : public ::testing::TestWithParam<int> {};

TEST_P(FoldVsEval, ConstantFoldingMatchesEval) {
  Rng rng(static_cast<u64>(GetParam()) * 1337 + 21);
  for (int trial = 0; trial < 60; ++trial) {
    Ctx c;
    u64 xv = rng.next(), yv = rng.next();
    ExprRef x = c.var("x");
    ExprRef y = c.var("y");
    std::unordered_map<u32, u64> model{{0, xv}, {1, yv}};
    // One random operator application.
    ExprRef sym = kNullExpr, con = kNullExpr;
    switch (rng.below(12)) {
      case 0: sym = c.add(x, y); con = c.add(c.constant(xv), c.constant(yv)); break;
      case 1: sym = c.sub(x, y); con = c.sub(c.constant(xv), c.constant(yv)); break;
      case 2: sym = c.mul(x, y); con = c.mul(c.constant(xv), c.constant(yv)); break;
      case 3: sym = c.udiv(x, y); con = c.udiv(c.constant(xv), c.constant(yv)); break;
      case 4: sym = c.urem(x, y); con = c.urem(c.constant(xv), c.constant(yv)); break;
      case 5: sym = c.band(x, y); con = c.band(c.constant(xv), c.constant(yv)); break;
      case 6: sym = c.bor(x, y); con = c.bor(c.constant(xv), c.constant(yv)); break;
      case 7: sym = c.bxor(x, y); con = c.bxor(c.constant(xv), c.constant(yv)); break;
      case 8: sym = c.eq(x, y); con = c.eq(c.constant(xv), c.constant(yv)); break;
      case 9: sym = c.ult(x, y); con = c.ult(c.constant(xv), c.constant(yv)); break;
      case 10: sym = c.slt(x, y); con = c.slt(c.constant(xv), c.constant(yv)); break;
      case 11: {
        u64 amount = rng.below(64);
        sym = c.shl(x, c.constant(amount));
        con = c.shl(c.constant(xv), c.constant(amount));
        break;
      }
    }
    ASSERT_TRUE(c.is_const(con));
    EXPECT_EQ(c.eval(sym, model), *c.const_value(con)) << "trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FoldVsEval, ::testing::Range(0, 6));

TEST(Solver, MultiVariableSystem) {
  // x + y == 100, x - y == 40  =>  x == 70, y == 30 (8-bit).
  Ctx c;
  ExprRef x = c.var("x", 8);
  ExprRef y = c.var("y", 8);
  Solver s(c);
  s.add(c.eq(c.add(x, y), c.constant(100, 8)));
  s.add(c.eq(c.sub(x, y), c.constant(40, 8)));
  ASSERT_EQ(s.check(), SatResult::kSat);
  u64 xv = s.model(x), yv = s.model(y);
  EXPECT_EQ((xv + yv) & 0xff, 100u);
  EXPECT_EQ((xv - yv) & 0xff, 40u);
}

TEST(Solver, IteBranchSelection) {
  Ctx c;
  ExprRef x = c.var("x");
  // ite(x < 10, x + 1, 0) == 5  =>  x == 4.
  Solver s(c);
  s.add(c.eq(c.ite(c.ult(x, c.constant(10)), c.add(x, c.constant(1)), c.constant(0)),
             c.constant(5)));
  ASSERT_EQ(s.check(), SatResult::kSat);
  EXPECT_EQ(s.model(x), 4u);
}

TEST(Sat, UnitChainPropagation) {
  SatSolver s;
  int v[6];
  for (auto& x : v) x = s.new_var();
  // Implication chain v0 -> v1 -> ... -> v5, assert v0, forbid v5: UNSAT.
  for (int i = 0; i < 5; ++i) s.add_clause({-v[i], v[i + 1]});
  s.add_clause({v[0]});
  s.add_clause({-v[5]});
  EXPECT_EQ(s.solve(), SatResult::kUnsat);
}

TEST(Sat, DuplicateAndTautologyClausesHandled) {
  SatSolver s;
  int a = s.new_var(), b = s.new_var();
  s.add_clause({a, a, a});       // collapses to unit
  s.add_clause({b, -b});          // tautology: dropped
  s.add_clause({-a, b});
  ASSERT_EQ(s.solve(), SatResult::kSat);
  EXPECT_TRUE(s.model_value(a));
  EXPECT_TRUE(s.model_value(b));
}

TEST(FilterExec, VehPrototypeUsesRecordPointerInR1) {
  // VEH handler reading the code via R1 (= &record): only the kVeh
  // prototype should find the AV-continue path.
  isa::Assembler a("dll");
  a.set_dll(true);
  a.label("veh");
  a.load(Reg::R3, Reg::R1, 8, 0);  // code from record via R1
  a.cmpi(Reg::R3, static_cast<i64>(0xC0000005));
  a.jcc(Cond::kEq, "veh_y");
  a.movi(Reg::R0, 0);
  a.ret();
  a.label("veh_y");
  a.movi(Reg::R0, -1);  // CONTINUE_EXECUTION
  a.ret();
  isa::Image img = a.build();
  Ctx c;
  FilterExecutor fx(c, img);
  FilterAnalysis veh = fx.explore(img.find_symbol("veh")->offset, 16, 512,
                                  FilterExecutor::Proto::kVeh);
  bool continues = false;
  for (const auto& p : veh.paths) {
    Solver s(c);
    s.add(p.cond);
    s.add(c.eq(fx.exc_code(), c.constant(0xC0000005)));
    s.add(c.eq(p.ret, c.constant(kDispContinueExecution)));
    if (s.check() == SatResult::kSat) continues = true;
  }
  EXPECT_TRUE(continues);
}

}  // namespace
}  // namespace crp::symex
