#include <gtest/gtest.h>

#include <memory>

#include "chaos/chaos.h"
#include "isa/assembler.h"
#include "os/kernel.h"
#include "taint/taint.h"

namespace crp::taint {
namespace {

using isa::Assembler;
using isa::Cond;
using isa::Reg;
using os::Sys;

void emit_syscall(Assembler& a, Sys nr) {
  a.movi(Reg::R0, static_cast<i64>(nr));
  a.syscall();
}

struct World {
  os::Kernel k;
  int pid = 0;
  std::unique_ptr<TaintEngine> taint;

  explicit World(isa::Image img, u64 seed = 21) {
    pid = k.create_process(img.name, vm::Personality::kLinux, seed);
    k.proc(pid).load(std::make_shared<isa::Image>(std::move(img)));
    k.start_process(pid);
    taint = std::make_unique<TaintEngine>(k, k.proc(pid));
  }
  os::Process& p() { return k.proc(pid); }
};

TEST(MaskForColor, Mapping) {
  EXPECT_EQ(mask_for_color(0), 0u);
  EXPECT_EQ(mask_for_color(1), 1u);
  EXPECT_EQ(mask_for_color(2), 2u);
  EXPECT_EQ(mask_for_color(64), 1ull << 63);
  EXPECT_EQ(mask_for_color(65), 1u);  // wraps
}

TEST(Propagation, LoadStoreMovArith) {
  // Program: tainted cell -> load -> mov -> add imm -> store elsewhere.
  Assembler a("t");
  a.label("e");
  a.lea_pc(Reg::R2, "src");
  a.load(Reg::R3, Reg::R2, 8);
  a.mov(Reg::R4, Reg::R3);
  a.addi(Reg::R4, 5);
  a.lea_pc(Reg::R5, "dst");
  a.store(Reg::R5, 0, Reg::R4, 8);
  // Also: overwrite R3 with a constant -> taint cleared.
  a.movi(Reg::R3, 0);
  a.label("stop");
  a.jmp("stop");
  a.set_entry("e");
  a.data_u64("src", 0xabcd);
  a.data_u64("dst", 0);
  World w(a.build());
  gva_t src = w.p().machine().modules()[0].symbol_addr("src");
  gva_t dst = w.p().machine().modules()[0].symbol_addr("dst");
  w.taint->taint_mem(src, 8, mask_for_color(3));
  w.k.run(2000);
  EXPECT_EQ(w.taint->mem_taint(dst, 8), mask_for_color(3));
  EXPECT_EQ(w.taint->reg_taint(Reg::R4), mask_for_color(3));
  EXPECT_EQ(w.taint->reg_taint(Reg::R3), 0u);
}

TEST(Propagation, ByteGranularity) {
  // Taint only byte 2 of an 8-byte cell; a 1-byte load of byte 0 is clean,
  // of byte 2 is tainted.
  Assembler a("t");
  a.label("e");
  a.lea_pc(Reg::R2, "src");
  a.load(Reg::R3, Reg::R2, 1, 0);
  a.load(Reg::R4, Reg::R2, 1, 2);
  a.label("stop");
  a.jmp("stop");
  a.set_entry("e");
  a.data_u64("src", 0);
  World w(a.build());
  gva_t src = w.p().machine().modules()[0].symbol_addr("src");
  w.taint->taint_mem(src + 2, 1, mask_for_color(1));
  w.k.run(2000);
  EXPECT_EQ(w.taint->reg_taint(Reg::R3), 0u);
  EXPECT_EQ(w.taint->reg_taint(Reg::R4), mask_for_color(1));
}

TEST(Propagation, UnionOnRegReg) {
  Assembler a("t");
  a.label("e");
  a.lea_pc(Reg::R2, "x");
  a.load(Reg::R3, Reg::R2, 8, 0);
  a.load(Reg::R4, Reg::R2, 8, 8);
  a.add(Reg::R3, Reg::R4);
  a.label("stop");
  a.jmp("stop");
  a.set_entry("e");
  a.data_u64("x", 1);
  a.data_u64("y", 2);
  World w(a.build());
  gva_t x = w.p().machine().modules()[0].symbol_addr("x");
  w.taint->taint_mem(x, 8, mask_for_color(1));
  w.taint->taint_mem(x + 8, 8, mask_for_color(2));
  w.k.run(2000);
  EXPECT_EQ(w.taint->reg_taint(Reg::R3), mask_for_color(1) | mask_for_color(2));
}

TEST(Propagation, XorZeroingClears) {
  Assembler a("t");
  a.label("e");
  a.lea_pc(Reg::R2, "x");
  a.load(Reg::R3, Reg::R2, 8);
  a.xor_(Reg::R3, Reg::R3);
  a.label("stop");
  a.jmp("stop");
  a.set_entry("e");
  a.data_u64("x", 1);
  World w(a.build());
  w.taint->taint_mem(w.p().machine().modules()[0].symbol_addr("x"), 8, 1);
  w.k.run(2000);
  EXPECT_EQ(w.taint->reg_taint(Reg::R3), 0u);
}

TEST(Propagation, PushPopThroughStack) {
  Assembler a("t");
  a.label("e");
  a.lea_pc(Reg::R2, "x");
  a.load(Reg::R3, Reg::R2, 8);
  a.push(Reg::R3);
  a.pop(Reg::R4);
  a.label("stop");
  a.jmp("stop");
  a.set_entry("e");
  a.data_u64("x", 1);
  World w(a.build());
  w.taint->taint_mem(w.p().machine().modules()[0].symbol_addr("x"), 8, 4);
  w.k.run(2000);
  EXPECT_EQ(w.taint->reg_taint(Reg::R4), 4u);
}

TEST(Provenance, TracksLoadHome) {
  Assembler a("t");
  a.label("e");
  a.lea_pc(Reg::R2, "ptr_cell");
  a.load(Reg::R3, Reg::R2, 8);  // R3 loaded from ptr_cell
  a.mov(Reg::R4, Reg::R3);      // provenance follows mov
  a.addi(Reg::R3, 8);           // arithmetic clears provenance
  a.label("stop");
  a.jmp("stop");
  a.set_entry("e");
  a.data_u64("ptr_cell", 0x1234);
  World w(a.build());
  gva_t cell = w.p().machine().modules()[0].symbol_addr("ptr_cell");
  w.k.run(2000);
  auto prov4 = w.taint->reg_provenance(Reg::R4);
  ASSERT_TRUE(prov4.has_value());
  EXPECT_EQ(*prov4, cell);
  EXPECT_FALSE(w.taint->reg_provenance(Reg::R3).has_value());
}

TEST(Sources, NetworkBytesCarryConnectionColor) {
  // Server reads from a client; the buffer bytes must carry the client's
  // color, and a pointer loaded from those bytes must taint the register.
  Assembler a("srv");
  a.label("e");
  emit_syscall(a, Sys::kSocket);
  a.mov(Reg::R5, Reg::R0);
  a.mov(Reg::R1, Reg::R5);
  a.movi(Reg::R2, 8080);
  emit_syscall(a, Sys::kBind);
  a.mov(Reg::R1, Reg::R5);
  emit_syscall(a, Sys::kListen);
  a.mov(Reg::R1, Reg::R5);
  a.movi(Reg::R2, 0);
  emit_syscall(a, Sys::kAccept);
  a.mov(Reg::R6, Reg::R0);
  a.mov(Reg::R1, Reg::R6);
  a.lea_pc(Reg::R2, "buf");
  a.movi(Reg::R3, 64);
  emit_syscall(a, Sys::kRead);
  // Load the first 8 client bytes as a "pointer".
  a.lea_pc(Reg::R2, "buf");
  a.load(Reg::R7, Reg::R2, 8);
  a.label("stop");
  a.jmp("stop");
  a.set_entry("e");
  a.data_zero("buf", 64);
  World w(a.build());
  w.k.run(50000);
  auto client = w.k.connect(8080);
  ASSERT_TRUE(client.has_value());
  w.k.run(50000);
  client->send("AAAAAAAA");
  w.k.run(50000);
  gva_t buf = w.p().machine().modules()[0].symbol_addr("buf");
  Mask expected = mask_for_color(client->color());
  EXPECT_NE(expected, 0u);
  EXPECT_EQ(w.taint->mem_taint(buf, 8), expected);
  EXPECT_EQ(w.taint->reg_taint(Reg::R7), expected);
  auto prov = w.taint->reg_provenance(Reg::R7);
  ASSERT_TRUE(prov.has_value());
  EXPECT_EQ(*prov, buf);
}

TEST(Sources, FileBytesAreClean) {
  Assembler a("t");
  a.label("e");
  a.lea_pc(Reg::R1, "path");
  a.movi(Reg::R2, 0);
  emit_syscall(a, Sys::kOpen);
  a.mov(Reg::R1, Reg::R0);
  a.lea_pc(Reg::R2, "buf");
  a.movi(Reg::R3, 16);
  emit_syscall(a, Sys::kRead);
  a.label("stop");
  a.jmp("stop");
  a.set_entry("e");
  a.data_cstr("path", "/f");
  a.data_zero("buf", 16);
  World w(a.build());
  w.k.vfs().put_file("/f", "0123456789abcdef");
  w.k.run(100000);
  gva_t buf = w.p().machine().modules()[0].symbol_addr("buf");
  EXPECT_EQ(w.taint->mem_taint(buf, 16), 0u);
}

TEST(Sources, NetworkLabelsSurviveInjectedEintrRetries) {
  // crp::chaos satellite: a spurious -EINTR injected into the read path must
  // be invisible to the taint layer — the guest retries, the retry observes
  // the same bytes, and the buffer carries the same connection color it
  // would have without the fault (the kernel injects *before* consuming the
  // stream, so no labeled byte is lost to an aborted read).
  Assembler a("srv");
  a.label("e");
  emit_syscall(a, Sys::kSocket);
  a.mov(Reg::R5, Reg::R0);
  a.mov(Reg::R1, Reg::R5);
  a.movi(Reg::R2, 8080);
  emit_syscall(a, Sys::kBind);
  a.mov(Reg::R1, Reg::R5);
  emit_syscall(a, Sys::kListen);
  a.mov(Reg::R1, Reg::R5);
  a.movi(Reg::R2, 0);
  emit_syscall(a, Sys::kAccept);
  a.mov(Reg::R6, Reg::R0);
  a.label("retry");
  a.mov(Reg::R1, Reg::R6);
  a.lea_pc(Reg::R2, "buf");
  a.movi(Reg::R3, 64);
  emit_syscall(a, Sys::kRead);
  a.cmpi(Reg::R0, -os::kEINTR);
  a.jcc(Cond::kEq, "retry");
  a.lea_pc(Reg::R2, "buf");
  a.load(Reg::R7, Reg::R2, 8);
  a.label("stop");
  a.jmp("stop");
  a.set_entry("e");
  a.data_zero("buf", 64);
  isa::Image img = a.build();

  // Labels must be intact at every seed; at least one seed in the sweep
  // must actually interrupt a read for the test to mean anything.
  size_t fired = 0;
  for (u64 seed = 1; seed <= 8; ++seed) {
    chaos::FaultPlan plan;
    plan.seed = seed;
    plan.rate = 2;
    plan.points = chaos::point_bit(chaos::Point::kSysEintr);
    chaos::ScopedPlan scope(plan);
    World w(img);
    w.k.run(50000);
    auto client = w.k.connect(8080);
    ASSERT_TRUE(client.has_value()) << "seed " << seed;
    w.k.run(50000);
    client->send("AAAAAAAA");
    w.k.run(50000);

    gva_t buf = w.p().machine().modules()[0].symbol_addr("buf");
    Mask expected = mask_for_color(client->color());
    EXPECT_NE(expected, 0u) << "seed " << seed;
    EXPECT_EQ(w.taint->mem_taint(buf, 8), expected) << "seed " << seed;
    EXPECT_EQ(w.taint->reg_taint(Reg::R7), expected) << "seed " << seed;
    fired += scope.events().size();
  }
  ASSERT_GT(fired, 0u);  // the fault really was provoked somewhere
}

TEST(Control, DisableStopsTracking) {
  Assembler a("t");
  a.label("e");
  a.lea_pc(Reg::R2, "x");
  a.load(Reg::R3, Reg::R2, 8);
  a.label("stop");
  a.jmp("stop");
  a.set_entry("e");
  a.data_u64("x", 1);
  World w(a.build());
  w.taint->taint_mem(w.p().machine().modules()[0].symbol_addr("x"), 8, 1);
  w.taint->set_enabled(false);
  w.k.run(2000);
  EXPECT_EQ(w.taint->reg_taint(Reg::R3), 0u);
}

TEST(Control, ClearAllResets) {
  Assembler a("t");
  a.label("e");
  a.label("stop");
  a.jmp("stop");
  a.set_entry("e");
  World w(a.build());
  w.taint->taint_mem(0x5000, 16, 3);
  EXPECT_EQ(w.taint->mem_taint(0x5000, 16), 3u);
  w.taint->clear_all();
  EXPECT_EQ(w.taint->mem_taint(0x5000, 16), 0u);
}

}  // namespace
}  // namespace crp::taint
