#include <gtest/gtest.h>

#include "oracle/oracle.h"
#include "targets/common.h"
#include "targets/nginx.h"

namespace crp::oracle {
namespace {

TEST(ProbeResultNames, AllNamed) {
  EXPECT_STREQ(probe_result_name(ProbeResult::kMapped), "mapped");
  EXPECT_STREQ(probe_result_name(ProbeResult::kUnmapped), "unmapped");
  EXPECT_STREQ(probe_result_name(ProbeResult::kUnknown), "unknown");
}

TEST(ExpectedProbes, Geometric) {
  EXPECT_DOUBLE_EQ(expected_probes(1 << 20, 1), static_cast<double>(1 << 20));
  EXPECT_DOUBLE_EQ(expected_probes(1 << 20, 1 << 10), 1024.0);
  EXPECT_DOUBLE_EQ(expected_probes(100, 0), 0.0);
}

struct NginxWorld {
  os::Kernel k;
  int pid = 0;
  gva_t hidden = 0;

  NginxWorld() {
    auto t = targets::make_nginx();
    pid = t.instantiate(k, 555);
    k.run(3'000'000);  // startup
    hidden = targets::plant_hidden_region(k.proc(pid), 4 * 4096, 0x5AFE57AC);
  }
};

TEST(NginxRecvOracle, DistinguishesMappedFromUnmapped) {
  NginxWorld w;
  NginxRecvOracle oracle(w.k, w.pid, targets::kNginxPort);
  // Unmapped probe.
  EXPECT_EQ(oracle.probe(0x13370000000), ProbeResult::kUnmapped);
  EXPECT_TRUE(w.k.proc(w.pid).alive());
  // Mapped probe: the hidden region itself (RW).
  EXPECT_EQ(oracle.probe(w.hidden + 4096), ProbeResult::kMapped);
  EXPECT_TRUE(w.k.proc(w.pid).alive());
  EXPECT_EQ(w.k.proc(w.pid).machine().exception_stats().unhandled, 0u);
  EXPECT_EQ(oracle.probes_issued(), 2u);
}

TEST(NginxRecvOracle, RepeatedProbingNeverCrashes) {
  NginxWorld w;
  NginxRecvOracle oracle(w.k, w.pid, targets::kNginxPort);
  int mapped = 0;
  for (int i = 0; i < 12; ++i) {
    gva_t addr = (i % 2 == 0) ? 0x6000dead0000 + static_cast<u64>(i) * 4096
                              : w.hidden + static_cast<u64>(i % 4) * 4096;
    ProbeResult r = oracle.probe(addr);
    if (i % 2 == 0) {
      EXPECT_EQ(r, ProbeResult::kUnmapped) << i;
    } else {
      EXPECT_EQ(r, ProbeResult::kMapped) << i;
      ++mapped;
    }
    ASSERT_TRUE(w.k.proc(w.pid).alive()) << "crashed at probe " << i;
  }
  EXPECT_EQ(mapped, 6);
}

TEST(Scanner, SweepFindsRegionBoundaries) {
  NginxWorld w;
  NginxRecvOracle oracle(w.k, w.pid, targets::kNginxPort);
  Scanner scanner(oracle);
  // Sweep a window straddling the hidden region start.
  gva_t base = w.hidden - 2 * 4096;
  auto mapped = scanner.sweep(base, 5 * 4096, 4096);
  ASSERT_EQ(mapped.size(), 3u);  // the 3 in-region pages of the window
  EXPECT_EQ(mapped[0], w.hidden);
  EXPECT_EQ(scanner.stats().probes, 5u);
  EXPECT_EQ(scanner.stats().mapped_hits, 3u);
}

TEST(Scanner, HuntLocatesHiddenRegionCrashlessly) {
  NginxWorld w;
  NginxRecvOracle oracle(w.k, w.pid, targets::kNginxPort);
  Scanner scanner(oracle);
  // Constrain the search window (a full 47-bit hunt would take geometric
  // ~2^35/4 probes; the bench reports the math, the test proves mechanics).
  gva_t lo = w.hidden - 128 * 4096;
  gva_t hi = w.hidden + 128 * 4096;
  auto hit = scanner.hunt(lo, hi, 2000, /*seed=*/9);
  ASSERT_TRUE(hit.has_value());
  EXPECT_GE(*hit, w.hidden);
  EXPECT_LT(*hit, w.hidden + 4 * 4096);
  EXPECT_TRUE(w.k.proc(w.pid).alive());
  EXPECT_EQ(w.k.proc(w.pid).machine().exception_stats().unhandled, 0u);
}

TEST(SehProbeOracleT, IeProbingMatchesGroundTruth) {
  os::Kernel k;
  targets::BrowserSim b(k, {targets::BrowserSim::Kind::kIE, 77, 0});
  gva_t hidden = targets::plant_hidden_region(b.proc(), 2 * 4096, 0xCAFED00D);
  SehProbeOracle oracle(b);
  EXPECT_EQ(oracle.probe(hidden + 8), ProbeResult::kMapped);
  EXPECT_EQ(oracle.probe(0x4141410000), ProbeResult::kUnmapped);
  EXPECT_EQ(oracle.probe(hidden + 4096), ProbeResult::kMapped);
  EXPECT_TRUE(k.proc(b.pid()).alive());
  EXPECT_EQ(b.proc().machine().exception_stats().unhandled, 0u);
}

TEST(SehProbeOracleT, ProbingIsRepeatable) {
  os::Kernel k;
  targets::BrowserSim b(k, {targets::BrowserSim::Kind::kIE, 78, 0});
  gva_t hidden = targets::plant_hidden_region(b.proc(), 4096, 1);
  SehProbeOracle oracle(b);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(oracle.probe(hidden), ProbeResult::kMapped) << i;
    EXPECT_EQ(oracle.probe(0x5151510000 + static_cast<u64>(i) * 4096),
              ProbeResult::kUnmapped)
        << i;
  }
  EXPECT_TRUE(k.proc(b.pid()).alive());
}

TEST(FirefoxPollOracleT, BackgroundThreadOracleWorks) {
  os::Kernel k;
  targets::BrowserSim b(k, {targets::BrowserSim::Kind::kFirefox, 79, 0});
  gva_t hidden = targets::plant_hidden_region(b.proc(), 4096, 2);
  FirefoxPollOracle oracle(b);
  EXPECT_EQ(oracle.probe(hidden), ProbeResult::kMapped);
  EXPECT_EQ(oracle.probe(0x6161610000), ProbeResult::kUnmapped);
  EXPECT_TRUE(k.proc(b.pid()).alive());
  EXPECT_EQ(b.proc().machine().exception_stats().unhandled, 0u);
}

TEST(FirefoxPollOracleT, ScannerOverFirefoxOracle) {
  os::Kernel k;
  targets::BrowserSim b(k, {targets::BrowserSim::Kind::kFirefox, 80, 0});
  gva_t hidden = targets::plant_hidden_region(b.proc(), 2 * 4096, 3);
  FirefoxPollOracle oracle(b);
  Scanner scanner(oracle);
  auto hit = scanner.hunt(hidden - 64 * 4096, hidden + 64 * 4096, 600, 4);
  ASSERT_TRUE(hit.has_value());
  EXPECT_GE(*hit, hidden);
  EXPECT_LT(*hit, hidden + 2 * 4096);
}

}  // namespace
}  // namespace crp::oracle

// Appended: the crash-tolerant (BROP-style) baseline the paper contrasts
// crash resistance against.
#include "oracle/crash_tolerant.h"

namespace crp::oracle {
namespace {

TEST(CrashTolerant, ProbesCorrectlyButLoudly) {
  CrashTolerantProbe probe(targets::make_nginx(), 0xBEEF01);
  gva_t hidden = probe.plant_hidden(2 * 4096, 0xF00D);
  // Mapped probe: no crash.
  EXPECT_EQ(probe.probe(hidden), ProbeResult::kMapped);
  EXPECT_EQ(probe.crashes(), 0u);
  // Unmapped probe: crash + restart, still answers correctly.
  EXPECT_EQ(probe.probe(0x414100000000ull), ProbeResult::kUnmapped);
  EXPECT_EQ(probe.crashes(), 1u);
  // Next probe works against the respawned instance (layout persisted).
  EXPECT_EQ(probe.probe(hidden + 4096), ProbeResult::kMapped);
  EXPECT_EQ(probe.restarts(), 1u);
}

TEST(CrashTolerant, LayoutPersistsAcrossRestarts) {
  CrashTolerantProbe probe(targets::make_nginx(), 0xBEEF02);
  gva_t hidden = probe.plant_hidden(4096, 0xCAFE);
  for (int i = 0; i < 3; ++i)
    EXPECT_EQ(probe.probe(0x515100000000ull + static_cast<u64>(i) * 4096),
              ProbeResult::kUnmapped);
  EXPECT_EQ(probe.crashes(), 3u);
  // The pre-fork layout assumption: the region is still where it was.
  EXPECT_EQ(probe.probe(hidden), ProbeResult::kMapped);
}

TEST(CrashTolerant, NoiseScalesWithUnmappedProbes) {
  CrashTolerantProbe noisy(targets::make_nginx(), 0xBEEF03);
  noisy.plant_hidden(4096, 1);
  Scanner scanner(noisy);
  scanner.sweep(0x616100000000ull, 6 * 4096, 4096);  // all unmapped
  EXPECT_EQ(noisy.crashes(), 6u);  // one crash per probe — the §I noise
}

}  // namespace
}  // namespace crp::oracle
