#include <gtest/gtest.h>

#include "oracle/oracle.h"
#include "targets/common.h"
#include "targets/nginx.h"

namespace crp::oracle {
namespace {

TEST(ProbeResultNames, AllNamed) {
  EXPECT_STREQ(probe_result_name(ProbeResult::kMapped), "mapped");
  EXPECT_STREQ(probe_result_name(ProbeResult::kUnmapped), "unmapped");
  EXPECT_STREQ(probe_result_name(ProbeResult::kUnknown), "unknown");
}

TEST(ExpectedProbes, Geometric) {
  EXPECT_DOUBLE_EQ(expected_probes(1 << 20, 1), static_cast<double>(1 << 20));
  EXPECT_DOUBLE_EQ(expected_probes(1 << 20, 1 << 10), 1024.0);
  EXPECT_DOUBLE_EQ(expected_probes(100, 0), 0.0);
}

struct NginxWorld {
  os::Kernel k;
  int pid = 0;
  gva_t hidden = 0;

  NginxWorld() {
    auto t = targets::make_nginx();
    pid = t.instantiate(k, 555);
    k.run(3'000'000);  // startup
    hidden = targets::plant_hidden_region(k.proc(pid), 4 * 4096, 0x5AFE57AC);
  }
};

TEST(NginxRecvOracle, DistinguishesMappedFromUnmapped) {
  NginxWorld w;
  NginxRecvOracle oracle(w.k, w.pid, targets::kNginxPort);
  // Unmapped probe.
  EXPECT_EQ(oracle.probe(0x13370000000), ProbeResult::kUnmapped);
  EXPECT_TRUE(w.k.proc(w.pid).alive());
  // Mapped probe: the hidden region itself (RW).
  EXPECT_EQ(oracle.probe(w.hidden + 4096), ProbeResult::kMapped);
  EXPECT_TRUE(w.k.proc(w.pid).alive());
  EXPECT_EQ(w.k.proc(w.pid).machine().exception_stats().unhandled, 0u);
  EXPECT_EQ(oracle.probes_issued(), 2u);
}

TEST(NginxRecvOracle, RepeatedProbingNeverCrashes) {
  NginxWorld w;
  NginxRecvOracle oracle(w.k, w.pid, targets::kNginxPort);
  int mapped = 0;
  for (int i = 0; i < 12; ++i) {
    gva_t addr = (i % 2 == 0) ? 0x6000dead0000 + static_cast<u64>(i) * 4096
                              : w.hidden + static_cast<u64>(i % 4) * 4096;
    ProbeResult r = oracle.probe(addr);
    if (i % 2 == 0) {
      EXPECT_EQ(r, ProbeResult::kUnmapped) << i;
    } else {
      EXPECT_EQ(r, ProbeResult::kMapped) << i;
      ++mapped;
    }
    ASSERT_TRUE(w.k.proc(w.pid).alive()) << "crashed at probe " << i;
  }
  EXPECT_EQ(mapped, 6);
}

TEST(Scanner, SweepFindsRegionBoundaries) {
  NginxWorld w;
  NginxRecvOracle oracle(w.k, w.pid, targets::kNginxPort);
  Scanner scanner(oracle);
  // Sweep a window straddling the hidden region start.
  gva_t base = w.hidden - 2 * 4096;
  auto mapped = scanner.sweep(base, 5 * 4096, 4096);
  ASSERT_EQ(mapped.size(), 3u);  // the 3 in-region pages of the window
  EXPECT_EQ(mapped[0], w.hidden);
  EXPECT_EQ(scanner.stats().probes, 5u);
  EXPECT_EQ(scanner.stats().mapped_hits, 3u);
}

TEST(Scanner, HuntLocatesHiddenRegionCrashlessly) {
  NginxWorld w;
  NginxRecvOracle oracle(w.k, w.pid, targets::kNginxPort);
  Scanner scanner(oracle);
  // Constrain the search window (a full 47-bit hunt would take geometric
  // ~2^35/4 probes; the bench reports the math, the test proves mechanics).
  gva_t lo = w.hidden - 128 * 4096;
  gva_t hi = w.hidden + 128 * 4096;
  auto hit = scanner.hunt(lo, hi, 2000, /*seed=*/9);
  ASSERT_TRUE(hit.has_value());
  EXPECT_GE(*hit, w.hidden);
  EXPECT_LT(*hit, w.hidden + 4 * 4096);
  EXPECT_TRUE(w.k.proc(w.pid).alive());
  EXPECT_EQ(w.k.proc(w.pid).machine().exception_stats().unhandled, 0u);
}

TEST(SehProbeOracleT, IeProbingMatchesGroundTruth) {
  os::Kernel k;
  targets::BrowserSim b(k, {targets::BrowserSim::Kind::kIE, 77, 0});
  gva_t hidden = targets::plant_hidden_region(b.proc(), 2 * 4096, 0xCAFED00D);
  SehProbeOracle oracle(b);
  EXPECT_EQ(oracle.probe(hidden + 8), ProbeResult::kMapped);
  EXPECT_EQ(oracle.probe(0x4141410000), ProbeResult::kUnmapped);
  EXPECT_EQ(oracle.probe(hidden + 4096), ProbeResult::kMapped);
  EXPECT_TRUE(k.proc(b.pid()).alive());
  EXPECT_EQ(b.proc().machine().exception_stats().unhandled, 0u);
}

TEST(SehProbeOracleT, ProbingIsRepeatable) {
  os::Kernel k;
  targets::BrowserSim b(k, {targets::BrowserSim::Kind::kIE, 78, 0});
  gva_t hidden = targets::plant_hidden_region(b.proc(), 4096, 1);
  SehProbeOracle oracle(b);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(oracle.probe(hidden), ProbeResult::kMapped) << i;
    EXPECT_EQ(oracle.probe(0x5151510000 + static_cast<u64>(i) * 4096),
              ProbeResult::kUnmapped)
        << i;
  }
  EXPECT_TRUE(k.proc(b.pid()).alive());
}

TEST(FirefoxPollOracleT, BackgroundThreadOracleWorks) {
  os::Kernel k;
  targets::BrowserSim b(k, {targets::BrowserSim::Kind::kFirefox, 79, 0});
  gva_t hidden = targets::plant_hidden_region(b.proc(), 4096, 2);
  FirefoxPollOracle oracle(b);
  EXPECT_EQ(oracle.probe(hidden), ProbeResult::kMapped);
  EXPECT_EQ(oracle.probe(0x6161610000), ProbeResult::kUnmapped);
  EXPECT_TRUE(k.proc(b.pid()).alive());
  EXPECT_EQ(b.proc().machine().exception_stats().unhandled, 0u);
}

TEST(FirefoxPollOracleT, ScannerOverFirefoxOracle) {
  os::Kernel k;
  targets::BrowserSim b(k, {targets::BrowserSim::Kind::kFirefox, 80, 0});
  gva_t hidden = targets::plant_hidden_region(b.proc(), 2 * 4096, 3);
  FirefoxPollOracle oracle(b);
  Scanner scanner(oracle);
  auto hit = scanner.hunt(hidden - 64 * 4096, hidden + 64 * 4096, 600, 4);
  ASSERT_TRUE(hit.has_value());
  EXPECT_GE(*hit, hidden);
  EXPECT_LT(*hit, hidden + 2 * 4096);
}

/// Pure in-memory oracle for exercising Scanner edge cases without a guest:
/// everything inside [mapped_lo, mapped_hi) probes mapped, never crashes.
/// The membership test is wrap-safe so hi == 0 means "top of address space".
class StubOracle : public MemoryOracle {
 public:
  StubOracle(gva_t lo, gva_t hi) : lo_(lo), hi_(hi) {}
  ProbeResult probe(gva_t addr) override {
    probed.push_back(addr);
    ++probes_;
    return addr - lo_ < hi_ - lo_ ? ProbeResult::kMapped : ProbeResult::kUnmapped;
  }
  std::string name() const override { return "stub"; }
  std::vector<gva_t> probed;

 private:
  gva_t lo_, hi_;
};

TEST(Scanner, SweepReachesLastPageOfAddressSpace) {
  // Regression: the bound used to be `a < base + len`, which wraps to a tiny
  // value for windows ending at the top of the u64 space and probed nothing.
  constexpr gva_t kTop16 = 0xffff'ffff'ffff'0000ull;  // last 16 pages
  StubOracle oracle_last(kTop16 + 15 * 4096, kTop16 + 16 * 4096);  // hi wraps to 0
  Scanner scanner(oracle_last);
  auto mapped = scanner.sweep(kTop16, 16 * 4096, 4096);
  EXPECT_EQ(oracle_last.probed.size(), 16u);  // every page probed, none skipped
  ASSERT_EQ(mapped.size(), 1u);
  EXPECT_EQ(mapped[0], 0xffff'ffff'ffff'f000ull);  // the very last page
  EXPECT_EQ(scanner.stats().probes, 16u);
}

TEST(Scanner, SweepProbeAddressesUnchangedInInterior) {
  // The rewritten loop must visit exactly the addresses the old one did for
  // non-wrapping sweeps: base, base+stride, ... while remaining > 0.
  StubOracle oracle(0x5000, 0x7000);
  Scanner scanner(oracle);
  auto mapped = scanner.sweep(0x4000, 5 * 4096, 4096);
  std::vector<gva_t> want = {0x4000, 0x5000, 0x6000, 0x7000, 0x8000};
  EXPECT_EQ(oracle.probed, want);
  ASSERT_EQ(mapped.size(), 2u);
  EXPECT_EQ(mapped[0], 0x5000u);
  EXPECT_EQ(mapped[1], 0x6000u);
}

TEST(Scanner, SweepPartialTrailingStride) {
  // len not a stride multiple: the old and new loops both probe the page
  // containing the final partial stride's start.
  StubOracle oracle(0, 0);
  Scanner scanner(oracle);
  scanner.sweep(0x10000, 4096 + 512, 4096);
  std::vector<gva_t> want = {0x10000, 0x11000};
  EXPECT_EQ(oracle.probed, want);
}

TEST(Scanner, HuntSinglePageRange) {
  // Regression: (hi - lo) / page == 1 slot, fine — but a sub-page range gave
  // slots == 0 and Rng::below(0) panicked. Both must clamp to probing `lo`.
  StubOracle one_page(0x20000, 0x21000);
  Scanner s1(one_page);
  auto hit = s1.hunt(0x20000, 0x21000, 8, /*seed=*/3);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, 0x20000u);

  StubOracle sub_page(0x30000, 0x30800);
  Scanner s2(sub_page);
  auto hit2 = s2.hunt(0x30000, 0x30800, 8, /*seed=*/3);
  ASSERT_TRUE(hit2.has_value());
  EXPECT_EQ(*hit2, 0x30000u);
  for (gva_t a : sub_page.probed) EXPECT_EQ(a, 0x30000u);
}

}  // namespace
}  // namespace crp::oracle

// Appended: the crash-tolerant (BROP-style) baseline the paper contrasts
// crash resistance against.
#include "oracle/crash_tolerant.h"

namespace crp::oracle {
namespace {

TEST(CrashTolerant, ProbesCorrectlyButLoudly) {
  CrashTolerantProbe probe(targets::make_nginx(), 0xBEEF01);
  gva_t hidden = probe.plant_hidden(2 * 4096, 0xF00D);
  // Mapped probe: no crash.
  EXPECT_EQ(probe.probe(hidden), ProbeResult::kMapped);
  EXPECT_EQ(probe.crashes(), 0u);
  // Unmapped probe: crash + restart, still answers correctly.
  EXPECT_EQ(probe.probe(0x414100000000ull), ProbeResult::kUnmapped);
  EXPECT_EQ(probe.crashes(), 1u);
  // Next probe works against the respawned instance (layout persisted).
  EXPECT_EQ(probe.probe(hidden + 4096), ProbeResult::kMapped);
  EXPECT_EQ(probe.restarts(), 1u);
}

TEST(CrashTolerant, LayoutPersistsAcrossRestarts) {
  CrashTolerantProbe probe(targets::make_nginx(), 0xBEEF02);
  gva_t hidden = probe.plant_hidden(4096, 0xCAFE);
  for (int i = 0; i < 3; ++i)
    EXPECT_EQ(probe.probe(0x515100000000ull + static_cast<u64>(i) * 4096),
              ProbeResult::kUnmapped);
  EXPECT_EQ(probe.crashes(), 3u);
  // The pre-fork layout assumption: the region is still where it was.
  EXPECT_EQ(probe.probe(hidden), ProbeResult::kMapped);
}

TEST(CrashTolerant, NoiseScalesWithUnmappedProbes) {
  CrashTolerantProbe noisy(targets::make_nginx(), 0xBEEF03);
  noisy.plant_hidden(4096, 1);
  Scanner scanner(noisy);
  scanner.sweep(0x616100000000ull, 6 * 4096, 4096);  // all unmapped
  EXPECT_EQ(noisy.crashes(), 6u);  // one crash per probe — the §I noise
}

}  // namespace
}  // namespace crp::oracle
