// Tests for the crp::plan subsystem: the ExploitPlan codec (round-trip,
// golden fixtures, strict rejection of damaged documents), the per-class
// synthesizer, the fresh-instance replay harness (differential against the
// handwritten PoC attacks), and the pipeline plan_synth cache behavior.

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "obs/ledger.h"
#include "pipeline/campaign.h"
#include "pipeline/registry.h"
#include "pipeline/stages.h"
#include "plan/plan.h"
#include "plan/replay.h"
#include "plan/synth.h"
#include "targets/common.h"
#include "targets/jvm.h"
#include "targets/nginx.h"

namespace crp::plan {
namespace {

namespace fs = std::filesystem;

ExploitPlan full_plan() {
  ExploitPlan p;
  p.target_id = "server/nginx_sim";
  p.surface = Surface::kNginxRecv;
  p.primitive = "[syscall] nginx_sim: recv(arg2) — controllable home";
  p.rationale = "a rationale with spaces, %-signs and\na newline";
  p.symex_confirmed = true;
  p.region_pages = 16;
  p.scan.mode = ScanMode::kHunt;
  p.scan.window_pages = 1024;
  p.scan.stride_pages = 4;
  p.scan.max_probes = 5000;
  p.scan.seed = 0xA11CE;
  p.scan.locate_base = false;
  p.leak.offsets = {8, 16, 24};
  p.hijack.offset = 32;
  return p;
}

// --- codec -------------------------------------------------------------------

TEST(PlanCodec, RoundTripsEveryField) {
  ExploitPlan p = full_plan();
  ExploitPlan q;
  ASSERT_TRUE(decode_plan(encode_plan(p), &q));
  EXPECT_EQ(q.version, kPlanVersion);
  EXPECT_EQ(q.target_id, p.target_id);
  EXPECT_EQ(q.surface, p.surface);
  EXPECT_EQ(q.primitive, p.primitive);
  EXPECT_EQ(q.rationale, p.rationale);
  EXPECT_EQ(q.symex_confirmed, p.symex_confirmed);
  EXPECT_EQ(q.region_pages, p.region_pages);
  EXPECT_EQ(q.scan.mode, p.scan.mode);
  EXPECT_EQ(q.scan.window_pages, p.scan.window_pages);
  EXPECT_EQ(q.scan.stride_pages, p.scan.stride_pages);
  EXPECT_EQ(q.scan.max_probes, p.scan.max_probes);
  EXPECT_EQ(q.scan.seed, p.scan.seed);
  EXPECT_EQ(q.scan.locate_base, p.scan.locate_base);
  EXPECT_EQ(q.leak.offsets, p.leak.offsets);
  EXPECT_EQ(q.hijack.offset, p.hijack.offset);
}

TEST(PlanCodec, RoundTripsEmptyPlan) {
  // The kNone plan: empty strings and no offsets must survive the
  // whitespace-token format.
  ExploitPlan p;
  ExploitPlan q;
  ASSERT_TRUE(decode_plan(encode_plan(p), &q));
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.target_id, "");
  EXPECT_EQ(q.primitive, "");
  EXPECT_EQ(q.leak.offsets.size(), 0u);
}

TEST(PlanCodec, EncodingIsByteStable) {
  EXPECT_EQ(encode_plan(full_plan()), encode_plan(full_plan()));
}

TEST(PlanCodec, RejectsTruncatedDocuments) {
  std::string doc = encode_plan(full_plan());
  ExploitPlan q;
  // Every proper prefix must be rejected (the checksum footer is missing
  // or covers bytes that are no longer there).
  for (size_t n : {doc.size() - 1, doc.size() / 2, size_t{10}, size_t{0}})
    EXPECT_FALSE(decode_plan(doc.substr(0, n), &q)) << "prefix length " << n;
}

TEST(PlanCodec, RejectsCorruptedDocuments) {
  std::string doc = encode_plan(full_plan());
  for (size_t pos : {size_t{0}, doc.size() / 3, doc.size() / 2}) {
    std::string bad = doc;
    bad[pos] ^= 0x20;
    ExploitPlan q;
    EXPECT_FALSE(decode_plan(bad, &q)) << "flipped byte at " << pos;
  }
}

TEST(PlanCodec, RejectsFutureVersion) {
  // Re-checksum a version-bumped body so the *version gate* (not the
  // checksum) does the rejecting.
  std::string doc = encode_plan(full_plan());
  size_t tail = doc.rfind("sum ");
  ASSERT_NE(tail, std::string::npos);
  std::string body = doc.substr(0, tail);
  size_t v = body.find("crp-plan v1");
  ASSERT_NE(v, std::string::npos);
  body[v + 10] = '2';
  u64 h = 0xcbf29ce484222325ull;
  for (char c : body) {
    h ^= static_cast<u8>(c);
    h *= 0x100000001b3ull;
  }
  std::string bumped = body + strf("sum %016llx\n", (unsigned long long)h);
  ExploitPlan q;
  EXPECT_FALSE(decode_plan(bumped, &q));
}

// --- golden fixtures ---------------------------------------------------------

// Fixed evidence vectors: what each discovery funnel feeds the synthesizer,
// frozen so the encoded plan bytes are comparable against tests/golden/.
std::vector<analysis::Candidate> nginx_evidence() {
  analysis::Candidate c;
  c.cls = analysis::PrimitiveClass::kSyscall;
  c.target = "nginx_sim";
  c.syscall = os::Sys::kRecv;
  c.pointer_arg = 2;
  c.taint_mask = 0x3;
  c.pointer_home = 0x7000;
  c.controllable_home = true;
  c.verdict = analysis::Verdict::kUsable;
  c.note = "pointer home in heap";
  return {c};
}

std::vector<analysis::Candidate> jvm_evidence() {
  analysis::Candidate c;
  c.cls = analysis::PrimitiveClass::kExceptionHandler;
  c.target = "jvm_sim";
  c.module = "jvm_sim";
  c.catch_all = false;
  c.verdict = analysis::Verdict::kUsable;
  c.note = "signal handler (SIGSEGV, pc-editing)";
  return {c};
}

std::vector<analysis::Candidate> firefox_evidence() {
  analysis::Candidate c;
  c.cls = analysis::PrimitiveClass::kExceptionHandler;
  c.target = "browser/firefox_sim";
  c.module = "ntdll_sim";
  c.catch_all = false;
  c.verdict = analysis::Verdict::kUsable;
  c.note = "VEH probe filter";
  return {c};
}

TargetBinding synth_binding(const std::string& id, Surface s) {
  TargetBinding b;
  b.id = id;
  b.surface = s;
  return b;
}

void check_golden(const std::string& name, const ExploitPlan& p) {
  fs::path path = fs::path(CRP_SOURCE_DIR) / "tests" / "golden" / name;
  std::string encoded = encode_plan(p);
  if (std::getenv("CRP_UPDATE_GOLDEN") != nullptr) {
    fs::create_directories(path.parent_path());
    std::ofstream(path, std::ios::binary) << encoded;
  }
  std::ifstream f(path, std::ios::binary);
  ASSERT_TRUE(f.good()) << "missing golden fixture " << path
                        << " (regenerate with CRP_UPDATE_GOLDEN=1)";
  std::stringstream buf;
  buf << f.rdbuf();
  EXPECT_EQ(buf.str(), encoded) << "golden fixture " << name
                                << " drifted from synthesize() output";
  // And the canonical bytes must decode back to the same plan.
  ExploitPlan q;
  ASSERT_TRUE(decode_plan(buf.str(), &q));
  EXPECT_EQ(encode_plan(q), encoded);
}

TEST(PlanGolden, NginxRecvPlanMatchesFixture) {
  ExploitPlan p =
      synthesize(synth_binding("server/nginx_sim", Surface::kNginxRecv),
                 nginx_evidence());
  ASSERT_FALSE(p.empty());
  EXPECT_FALSE(p.symex_confirmed);  // syscall class: dynamically verified
  check_golden("nginx.plan", p);
}

TEST(PlanGolden, JvmNpePlanMatchesFixture) {
  ExploitPlan p = synthesize(synth_binding("runtime/jvm_sim", Surface::kJvmNpe),
                             jvm_evidence());
  ASSERT_FALSE(p.empty());
  EXPECT_TRUE(p.symex_confirmed);
  check_golden("jvm.plan", p);
}

TEST(PlanGolden, FirefoxPollPlanMatchesFixture) {
  ExploitPlan p =
      synthesize(synth_binding("browser/firefox_sim", Surface::kBrowserPoll),
                 firefox_evidence());
  ASSERT_FALSE(p.empty());
  EXPECT_TRUE(p.symex_confirmed);
  check_golden("firefox.plan", p);
}

// --- synthesizer -------------------------------------------------------------

TEST(PlanSynth, NoSurfaceYieldsEmptyPlanWithRationale) {
  ExploitPlan p =
      synthesize(synth_binding("corpus/dll_x64", Surface::kNone), {});
  EXPECT_TRUE(p.empty());
  EXPECT_FALSE(p.rationale.empty());
}

TEST(PlanSynth, NoEvidenceYieldsEmptyPlanWithRationale) {
  ExploitPlan p = synthesize(
      synth_binding("server/nginx_sim", Surface::kNginxRecv), {});
  EXPECT_TRUE(p.empty());
  EXPECT_NE(p.rationale.find("no verified syscall"), std::string::npos);
}

TEST(PlanSynth, IsAPureFunctionOfItsInputs) {
  TargetBinding b = synth_binding("server/nginx_sim", Surface::kNginxRecv);
  EXPECT_EQ(encode_plan(synthesize(b, nginx_evidence())),
            encode_plan(synthesize(b, nginx_evidence())));
}

// --- replay ------------------------------------------------------------------

TargetBinding nginx_binding() {
  TargetBinding b;
  b.id = "server/nginx_sim";
  b.surface = Surface::kNginxRecv;
  b.make_program = [] { return targets::make_nginx(); };
  b.port = targets::kNginxPort;
  b.aslr_seed = 0xD15C0;
  return b;
}

TEST(PlanReplay, EmptyPlanCompletesTrivially) {
  ExploitPlan p;  // kNone
  TargetBinding b = synth_binding("corpus/dll_x64", Surface::kNone);
  ReplayOutcome out = replay_fresh(b, p);
  EXPECT_TRUE(out.completed);
  EXPECT_EQ(out.probes, 0u);
  EXPECT_EQ(out.crashes, 0u);
}

TEST(PlanReplay, RejectsVersionMismatch) {
  ExploitPlan p = full_plan();
  p.version = kPlanVersion + 1;
  ReplayOutcome out = replay_fresh(nginx_binding(), p);
  EXPECT_FALSE(out.completed);
  EXPECT_NE(out.error.find("version"), std::string::npos);
  EXPECT_EQ(out.probes, 0u);
}

TEST(PlanReplay, SynthesizedNginxPlanRunsToCompletion) {
  SynthOptions so;
  so.window_pages = 256;
  so.region_pages = 16;
  ExploitPlan p = synthesize(nginx_binding(), nginx_evidence(), so);
  ASSERT_EQ(p.scan.mode, ScanMode::kSweep);

  HarnessOptions h;
  h.pattern = 0x5AFE0001;
  ReplayOutcome out = replay_fresh(nginx_binding(), p, h);
  EXPECT_TRUE(out.completed) << out.error;
  EXPECT_EQ(out.crashes, 0u);
  EXPECT_EQ(out.unhandled, 0u);
  EXPECT_TRUE(out.target_alive);
  EXPECT_TRUE(out.hit);
  EXPECT_EQ(out.region_base, out.planted_base);
  // Leak offsets skip the probe-clobbered word: the defender's pattern
  // words are intact at base+8/16/24.
  ASSERT_EQ(out.leaked.size(), 3u);
  EXPECT_EQ(out.leaked[0], 0x5AFE0001ull ^ 8u);
  EXPECT_EQ(out.leaked[1], 0x5AFE0001ull ^ 16u);
  EXPECT_EQ(out.leaked[2], 0x5AFE0001ull ^ 24u);
  // The hijack is a controlled write through the recv() primitive.
  EXPECT_TRUE(out.hijacked);
  EXPECT_EQ(out.control_addr, out.region_base + 32);
  EXPECT_NE(out.control_value, 0x5AFE0001ull ^ 32u);
}

TEST(PlanReplay, DifferentialNginxSweepVsHandwrittenHunt) {
  // The synthesized sweep plan and the handwritten PoC's randomized hunt
  // must reach the same hijack outcome on the same (deterministic) world:
  // same located base, same leaked word, same control slot.
  SynthOptions so;
  so.window_pages = 256;
  so.region_pages = 16;
  ExploitPlan sweep = synthesize(nginx_binding(), nginx_evidence(), so);

  ExploitPlan hunt = sweep;
  hunt.scan.mode = ScanMode::kHunt;
  hunt.scan.max_probes = 4000;
  hunt.scan.seed = 0xA11CE;
  hunt.leak.offsets = {8};

  HarnessOptions h;
  h.pattern = 0x5AFE0001;
  ReplayOutcome a = replay_fresh(nginx_binding(), sweep, h);
  ReplayOutcome b = replay_fresh(nginx_binding(), hunt, h);
  ASSERT_TRUE(a.completed) << a.error;
  ASSERT_TRUE(b.completed) << b.error;
  EXPECT_EQ(a.crashes + b.crashes, 0u);
  EXPECT_EQ(a.region_base, b.region_base);
  EXPECT_EQ(a.planted_base, b.planted_base);
  ASSERT_FALSE(b.leaked.empty());
  EXPECT_EQ(a.leaked[0], b.leaked[0]);
  EXPECT_EQ(a.control_addr, b.control_addr);
  EXPECT_TRUE(a.hijacked);
  EXPECT_TRUE(b.hijacked);
}

TEST(PlanReplay, JvmNpePlanRunsToCompletion) {
  TargetBinding b;
  b.id = "runtime/jvm_sim";
  b.surface = Surface::kJvmNpe;
  b.make_program = [] { return targets::make_jvm(); };
  b.port = targets::kJvmPort;
  b.aslr_seed = 0xD15C0;

  SynthOptions so;
  so.window_pages = 128;
  so.region_pages = 8;
  ExploitPlan p = synthesize(b, jvm_evidence(), so);
  ASSERT_FALSE(p.empty());

  ReplayOutcome out = replay_fresh(b, p);
  EXPECT_TRUE(out.completed) << out.error;
  EXPECT_EQ(out.crashes, 0u);
  EXPECT_EQ(out.unhandled, 0u);
  EXPECT_TRUE(out.target_alive);
  EXPECT_EQ(out.region_base, out.planted_base);
  // Read-probe surface: the defender's words are untouched.
  ASSERT_EQ(out.leaked.size(), 3u);
  EXPECT_EQ(out.leaked[0], 0x5AFE0001ull ^ 0u);
  EXPECT_TRUE(out.hijacked);
}

TEST(PlanReplay, BrowserSehAndPollPlansRunToCompletion) {
  for (auto kind : {targets::BrowserSim::Kind::kIE,
                    targets::BrowserSim::Kind::kFirefox}) {
    bool ie = kind == targets::BrowserSim::Kind::kIE;
    TargetBinding b;
    b.id = ie ? "browser/ie_sim" : "browser/firefox_sim";
    b.surface = ie ? Surface::kBrowserSeh : Surface::kBrowserPoll;
    b.browser.kind = kind;
    b.browser.seed = ie ? 0xE11E : 0xF0F0;

    std::vector<analysis::Candidate> ev = firefox_evidence();
    if (ie) ev[0].module = "jscript9_sim";

    SynthOptions so;
    so.window_pages = 64;
    so.region_pages = 8;
    ExploitPlan p = synthesize(b, ev, so);
    ASSERT_FALSE(p.empty()) << b.id << ": " << p.rationale;

    ReplayOutcome out = replay_fresh(b, p);
    EXPECT_TRUE(out.completed) << b.id << ": " << out.error;
    EXPECT_EQ(out.crashes, 0u) << b.id;
    EXPECT_EQ(out.unhandled, 0u) << b.id;
    EXPECT_TRUE(out.hijacked) << b.id;
    EXPECT_EQ(out.region_base, out.planted_base) << b.id;
  }
}

TEST(PlanReplay, ExhaustedHuntBudgetFailsWithoutCrashes) {
  ExploitPlan p = synthesize(nginx_binding(), nginx_evidence());
  p.scan.mode = ScanMode::kHunt;
  p.scan.window_pages = 4096;
  p.scan.max_probes = 3;  // hopeless budget in a 4096-page window
  p.scan.seed = 7;
  ReplayOutcome out = replay_fresh(nginx_binding(), p);
  EXPECT_FALSE(out.completed);
  EXPECT_NE(out.error.find("budget"), std::string::npos);
  EXPECT_EQ(out.probes, 3u);
  EXPECT_EQ(out.crashes, 0u);
  EXPECT_EQ(out.unhandled, 0u);
  EXPECT_TRUE(out.target_alive);
}

TEST(PlanReplay, AuditLedgerStaysGreenAcrossAReplay) {
  obs::Ledger::global().clear();
  SynthOptions so;
  so.window_pages = 128;
  so.region_pages = 16;
  ExploitPlan p = synthesize(nginx_binding(), nginx_evidence(), so);
  ReplayOutcome out = replay_fresh(nginx_binding(), p);
  ASSERT_TRUE(out.completed) << out.error;
  obs::LedgerAudit audit = obs::audit_ledger(obs::Ledger::global());
  EXPECT_TRUE(audit.zero_crash()) << audit.summary();
  EXPECT_GT(audit.events, 0u);
}

// --- pipeline integration ----------------------------------------------------

TEST(PlanStage, WarmSynthIsACacheHitWithIdenticalBytes) {
  pipeline::ArtifactStore store;
  store.set_enabled(true);
  pipeline::TargetRegistry reg = pipeline::TargetRegistry::builtin();
  const pipeline::TargetSpec* spec = reg.find("server/nginx_sim");
  ASSERT_NE(spec, nullptr);
  std::vector<analysis::Candidate> ev = nginx_evidence();

  pipeline::PlanSynthStage::In in{spec, &ev, {}, &store};
  pipeline::PlanSynthStage::Out cold = pipeline::PlanSynthStage::run(in);
  EXPECT_FALSE(cold.cache_hit);
  pipeline::PlanSynthStage::Out warm = pipeline::PlanSynthStage::run(in);
  EXPECT_TRUE(warm.cache_hit);
  EXPECT_EQ(encode_plan(cold.exploit_plan), encode_plan(warm.exploit_plan));
}

TEST(PlanStage, CorruptCachedPlanIsRecomputedNotReplayed) {
  fs::path dir = fs::temp_directory_path() / "crp_plan_cache_test";
  fs::remove_all(dir);
  pipeline::ArtifactStore store;
  store.set_enabled(true);
  store.set_dir(dir.string());

  pipeline::TargetRegistry reg = pipeline::TargetRegistry::builtin();
  const pipeline::TargetSpec* spec = reg.find("server/nginx_sim");
  ASSERT_NE(spec, nullptr);
  std::vector<analysis::Candidate> ev = nginx_evidence();
  pipeline::PlanSynthStage::In in{spec, &ev, {}, &store};
  pipeline::PlanSynthStage::Out cold = pipeline::PlanSynthStage::run(in);
  ASSERT_FALSE(cold.cache_hit);

  // Corrupt every plan_synth blob on disk, then drop the memory tier: the
  // store-level checksum rejects the blob, so synthesis recomputes.
  size_t corrupted = 0;
  for (const auto& e : fs::directory_iterator(dir)) {
    if (e.path().filename().string().rfind("plan_synth-", 0) != 0) continue;
    std::fstream f(e.path(), std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(-3, std::ios::end);
    f.put('X');
    ++corrupted;
  }
  ASSERT_GT(corrupted, 0u);
  store.clear();

  pipeline::PlanSynthStage::Out again = pipeline::PlanSynthStage::run(in);
  EXPECT_FALSE(again.cache_hit);
  EXPECT_EQ(encode_plan(cold.exploit_plan), encode_plan(again.exploit_plan));
  fs::remove_all(dir);
}

TEST(PlanStage, CampaignEpilogueIsJobCountInvariant) {
  // CRP_JOBS=1 vs 4 determinism: the whole plan epilogue (synthesis bytes
  // AND replay outcome) must not depend on the worker count.
  pipeline::TargetRegistry reg = pipeline::TargetRegistry::builtin();
  const pipeline::TargetSpec* spec = reg.find("server/nginx_sim");
  ASSERT_NE(spec, nullptr);

  auto run_with_jobs = [&](int jobs) {
    pipeline::CampaignOptions o;
    o.jobs = jobs;
    o.cache = false;
    o.plan = true;
    o.plan_window_pages = 128;
    o.plan_region_pages = 16;
    pipeline::Campaign c(o);
    return c.run_target(*spec);
  };
  pipeline::TargetReport one = run_with_jobs(1);
  pipeline::TargetReport four = run_with_jobs(4);

  ASSERT_TRUE(one.has_plan);
  ASSERT_TRUE(four.has_plan);
  EXPECT_EQ(encode_plan(one.exploit_plan), encode_plan(four.exploit_plan));
  EXPECT_TRUE(one.plan_replay.completed) << one.plan_replay.error;
  EXPECT_EQ(one.plan_replay.summary(), four.plan_replay.summary());
  EXPECT_EQ(one.plan_replay.crashes + four.plan_replay.crashes, 0u);
  // The rendered report (what crpd FETCH serves) is byte-identical too.
  EXPECT_EQ(pipeline::render_report(one, /*cache_tag=*/false),
            pipeline::render_report(four, /*cache_tag=*/false));
}

}  // namespace
}  // namespace crp::plan
