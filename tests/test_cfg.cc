#include <gtest/gtest.h>

#include "analysis/guard_audit.h"
#include "cfg/cfg.h"
#include "isa/assembler.h"
#include "targets/dll_corpus.h"

namespace crp::cfg {
namespace {

using isa::Assembler;
using isa::Cond;
using isa::Reg;

isa::Image diamond_image() {
  // entry: cmp; jcc -> then | else; join: ret
  Assembler a("d");
  a.label("entry");
  a.cmpi(Reg::R1, 5);          // 0
  a.jcc(Cond::kEq, "then");    // 16
  a.movi(Reg::R2, 1);          // 32  (else)
  a.jmp("join");               // 48
  a.label("then");
  a.movi(Reg::R2, 2);          // 64
  a.label("join");
  a.ret();                     // 80
  a.set_entry("entry");
  return a.build();
}

TEST(Cfg, DiamondBlocks) {
  isa::Image img = diamond_image();
  Cfg cfg = Cfg::build(img, {0});
  // Blocks: [0,32) branch, [32,64) jump, [64,80) fallthrough, [80,96) ret.
  ASSERT_EQ(cfg.blocks().size(), 4u);
  const BasicBlock* head = cfg.block_at(0);
  ASSERT_NE(head, nullptr);
  EXPECT_EQ(head->term, Terminator::kBranch);
  ASSERT_EQ(head->succs.size(), 2u);
  EXPECT_EQ(head->succs[0], 64u);  // taken
  EXPECT_EQ(head->succs[1], 32u);  // fallthrough
  const BasicBlock* els = cfg.block_at(32);
  ASSERT_NE(els, nullptr);
  EXPECT_EQ(els->term, Terminator::kJump);
  ASSERT_EQ(els->succs.size(), 1u);
  EXPECT_EQ(els->succs[0], 80u);
  const BasicBlock* then_b = cfg.block_at(64);
  ASSERT_NE(then_b, nullptr);
  EXPECT_EQ(then_b->term, Terminator::kFallthrough);
  const BasicBlock* join = cfg.block_at(80);
  ASSERT_NE(join, nullptr);
  EXPECT_EQ(join->term, Terminator::kReturn);
  EXPECT_TRUE(join->succs.empty());
}

TEST(Cfg, BlockAtMidInstruction) {
  isa::Image img = diamond_image();
  Cfg cfg = Cfg::build(img, {0});
  EXPECT_EQ(cfg.block_at(16), cfg.block_at(0));   // same block
  EXPECT_EQ(cfg.block_at(4096), nullptr);
}

TEST(Cfg, CallDiscoversFunctions) {
  Assembler a("c");
  a.label("entry");
  a.call("helper");
  a.halt();
  a.label("helper");
  a.load(Reg::R1, Reg::R2, 8);
  a.ret();
  a.set_entry("entry");
  isa::Image img = a.build();
  Cfg cfg = Cfg::build(img, {0});
  EXPECT_TRUE(cfg.function_entries().contains(0));
  EXPECT_TRUE(cfg.function_entries().contains(img.find_symbol("helper")->offset));
  const BasicBlock* entry = cfg.block_at(0);
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->term, Terminator::kCall);
  ASSERT_EQ(entry->call_targets.size(), 1u);
}

TEST(Cfg, LoadsAndStoresCounted) {
  Assembler a("m");
  a.label("e");
  a.load(Reg::R1, Reg::R2, 8);
  a.store(Reg::R3, 0, Reg::R1, 8);
  a.push(Reg::R1);
  a.pop(Reg::R1);
  a.ret();
  a.set_entry("e");
  Cfg cfg = Cfg::build(a.build(), {0});
  const BasicBlock* bb = cfg.block_at(0);
  ASSERT_NE(bb, nullptr);
  EXPECT_EQ(bb->loads, 3);   // load, pop, ret
  EXPECT_EQ(bb->stores, 2);  // store, push
  EXPECT_TRUE(cfg.derefs_in(0, bb->end));
}

TEST(Cfg, DerefsInDistinguishesExplicitAccess) {
  Assembler a("m");
  a.label("e");
  a.label("region1");
  a.push(Reg::R1);  // stack only — not an attacker-steerable dereference
  a.pop(Reg::R1);
  a.label("region1_end");
  a.load(Reg::R2, Reg::R3, 8);
  a.label("region2_end");
  a.ret();
  a.set_entry("e");
  isa::Image img = a.build();
  Cfg cfg = Cfg::build(img, {0});
  u64 r1 = img.find_symbol("region1")->offset;
  u64 r1e = img.find_symbol("region1_end")->offset;
  u64 r2e = img.find_symbol("region2_end")->offset;
  EXPECT_FALSE(cfg.derefs_in(r1, r1e));
  EXPECT_TRUE(cfg.derefs_in(r1e, r2e));
}

TEST(Cfg, UnreachableCodeNotDecoded) {
  Assembler a("u");
  a.label("e");
  a.ret();
  a.label("dead");
  a.movi(Reg::R1, 1);
  a.ret();
  a.set_entry("e");
  Cfg cfg = Cfg::build(a.build(), {0});
  EXPECT_EQ(cfg.blocks().size(), 1u);
  EXPECT_EQ(cfg.block_at(16), nullptr);
}

TEST(Cfg, BuildAllUsesScopeRoots) {
  Assembler a("s");
  a.set_dll(true);
  a.label("fn");  // not exported, only reachable via scope table
  a.label("g_b");
  a.load(Reg::R1, Reg::R2, 8);
  a.label("g_e");
  a.ret();
  a.label("h");
  a.ret();
  a.label("flt");
  a.movi(Reg::R0, 1);
  a.ret();
  a.scope("g_b", "g_e", "flt", "h");
  Cfg cfg = Cfg::build_all(a.build());
  EXPECT_NE(cfg.block_at(0), nullptr);  // guarded region decoded
  EXPECT_GE(cfg.blocks().size(), 3u);   // region, handler, filter
}

TEST(Cfg, InvalidRootsIgnored) {
  Cfg cfg = Cfg::build(diamond_image(), {999999, 7});
  EXPECT_TRUE(cfg.blocks().empty());
}

}  // namespace
}  // namespace crp::cfg

namespace crp::analysis {
namespace {

using isa::Assembler;
using isa::Cond;
using isa::Reg;

TEST(GuardAudit, ClassifiesThreeKinds) {
  Assembler a("lib");
  a.set_dll(true);
  a.label("fn");
  // Region 1: catch-all over a dereference -> deref-guard (candidate).
  a.label("r1_b");
  a.load(Reg::R1, Reg::R2, 8);
  a.label("r1_e");
  // Region 2: catch-all over pure arithmetic -> gratuitous.
  a.label("r2_b");
  a.addi(Reg::R1, 1);
  a.muli(Reg::R1, 3);
  a.label("r2_e");
  // Region 3: AV-rejecting filter over a dereference -> narrow.
  a.label("r3_b");
  a.load(Reg::R3, Reg::R4, 8);
  a.label("r3_e");
  a.ret();
  a.export_fn("fn", "fn");
  a.label("h");
  a.ret();
  a.label("f_div");
  a.cmpi(Reg::R1, static_cast<i64>(0xC0000094));
  a.jcc(Cond::kEq, "f_div_y");
  a.movi(Reg::R0, 0);
  a.ret();
  a.label("f_div_y");
  a.movi(Reg::R0, 1);
  a.ret();
  a.scope("r1_b", "r1_e", "", "h");
  a.scope("r2_b", "r2_e", "", "h");
  a.scope("r3_b", "r3_e", "f_div", "h");

  SehExtractor ex;
  ex.add_image(std::make_shared<isa::Image>(a.build()));
  FilterClassifier fc;
  auto filters = fc.classify_all(ex);
  GuardAuditSummary audit = audit_guards(ex, filters);
  EXPECT_EQ(audit.deref_guards, 1u);
  EXPECT_EQ(audit.gratuitous, 1u);
  EXPECT_EQ(audit.narrow, 1u);
  auto pm = audit.per_module();
  ASSERT_TRUE(pm.contains("lib"));
  EXPECT_EQ(pm["lib"].first, 1u);
  EXPECT_EQ(pm["lib"].second, 1u);
}

TEST(GuardAudit, CorpusGuardsAreMostlyDerefGuards) {
  // The generated corpus guards real dereferences, so the audit should rank
  // nearly all AV-capable guards as deref-guards.
  targets::DllSpec spec{"aud", isa::Machine::kX64, 20, 8, 0, 12, 6};
  auto dll = targets::generate_dll(spec, 3);
  SehExtractor ex;
  ex.add_image(dll.image);
  FilterClassifier fc;
  auto filters = fc.classify_all(ex);
  GuardAuditSummary audit = audit_guards(ex, filters);
  EXPECT_EQ(audit.deref_guards, 8u);
  EXPECT_EQ(audit.gratuitous, 0u);
  EXPECT_EQ(audit.narrow, 12u);
}

}  // namespace
}  // namespace crp::analysis
