// crp::obs unit tests: counter/gauge semantics, histogram bucket math and
// quantile accuracy, registry get-or-create + kind collisions, concurrent
// increments, JSON snapshot round-trip, snapshot/diff, Prometheus + JSON
// exposition, bench-snapshot parsing, journal ring + trace export.

#include <gtest/gtest.h>

#include <algorithm>
#include <thread>
#include <vector>

#include "chaos/chaos.h"
#include "obs/bench_support.h"
#include "obs/expo.h"
#include "obs/journal.h"
#include "obs/obs.h"

namespace crp::obs {
namespace {

// Tests below that record values only make sense when instrumentation is
// compiled in; under -DCRP_OBS_DISABLED recording is a no-op by design.
#define REQUIRE_OBS_COMPILED_IN() \
  if (!kCompiledIn) GTEST_SKIP() << "observability compiled out (CRP_OBS_DISABLED)"

TEST(Counter, IncAndReset) {
  REQUIRE_OBS_COMPILED_IN();
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Counter, RuntimeDisableDropsIncrements) {
  REQUIRE_OBS_COMPILED_IN();
  Counter c;
  set_runtime_enabled(false);
  c.inc(100);
  set_runtime_enabled(true);
  EXPECT_EQ(c.value(), 0u);
  c.inc(5);
  EXPECT_EQ(c.value(), 5u);
}

TEST(Gauge, SetAddUpdateMax) {
  REQUIRE_OBS_COMPILED_IN();
  Gauge g;
  g.set(-7);
  EXPECT_EQ(g.value(), -7);
  g.add(10);
  EXPECT_EQ(g.value(), 3);
  g.update_max(100);
  EXPECT_EQ(g.value(), 100);
  g.update_max(50);  // lower value must not win
  EXPECT_EQ(g.value(), 100);
}

TEST(Histogram, ExactSmallValues) {
  REQUIRE_OBS_COMPILED_IN();
  Histogram h;
  for (u64 v = 0; v < 4; ++v) {
    EXPECT_EQ(Histogram::bucket_index(v), v);
    EXPECT_EQ(Histogram::bucket_lo(static_cast<u32>(v)), v);
    EXPECT_EQ(Histogram::bucket_hi(static_cast<u32>(v)), v + 1);
  }
  h.record(2);
  h.record(2);
  EXPECT_EQ(h.quantile(0.5), 2u);
}

TEST(Histogram, BucketRangesInvertible) {
  // Every bucket's range must map back to the same bucket, and boundary
  // values must land in adjacent buckets.
  for (u32 idx = 0; idx < Histogram::kNumBuckets; ++idx) {
    u64 lo = Histogram::bucket_lo(idx);
    EXPECT_EQ(Histogram::bucket_index(lo), idx) << "lo of bucket " << idx;
    u64 hi = Histogram::bucket_hi(idx);
    EXPECT_EQ(Histogram::bucket_index(hi - 1), idx) << "hi-1 of bucket " << idx;
    if (idx + 1 < Histogram::kNumBuckets)
      EXPECT_EQ(Histogram::bucket_index(hi), idx + 1) << "hi of bucket " << idx;
  }
  EXPECT_EQ(Histogram::bucket_index(~0ull), Histogram::kNumBuckets - 1);
}

TEST(Histogram, StatsExact) {
  REQUIRE_OBS_COMPILED_IN();
  Histogram h;
  h.record(10);
  h.record(20);
  h.record(30);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.sum(), 60u);
  EXPECT_EQ(h.min(), 10u);
  EXPECT_EQ(h.max(), 30u);
  EXPECT_DOUBLE_EQ(h.mean(), 20.0);
}

TEST(Histogram, QuantilesOfUniformDistribution) {
  REQUIRE_OBS_COMPILED_IN();
  Histogram h;
  for (u64 v = 1; v <= 10000; ++v) h.record(v);
  // Log-bucketing bounds relative quantile error by 1/kSubBuckets = 25%.
  for (double q : {0.50, 0.95, 0.99}) {
    double exact = q * 10000.0;
    double est = static_cast<double>(h.quantile(q));
    EXPECT_NEAR(est, exact, exact * 0.25) << "q=" << q;
  }
  EXPECT_EQ(h.quantile(0.0), 1u);
  EXPECT_EQ(h.quantile(1.0), 10000u);
}

TEST(Histogram, QuantileClampedToObservedRange) {
  REQUIRE_OBS_COMPILED_IN();
  Histogram h;
  h.record(1000);
  // A single sample: every quantile is that sample, not a bucket edge.
  EXPECT_EQ(h.quantile(0.5), 1000u);
  EXPECT_EQ(h.quantile(0.99), 1000u);
}

TEST(Histogram, QuantileDegenerateCases) {
  REQUIRE_OBS_COMPILED_IN();
  // Empty histogram: every quantile is 0, not a bucket artifact.
  Histogram empty;
  EXPECT_EQ(empty.quantile(0.0), 0u);
  EXPECT_EQ(empty.quantile(0.5), 0u);
  EXPECT_EQ(empty.quantile(1.0), 0u);
  // Repeated single value: min == max, so every quantile is THE value even
  // though the bucket midpoint would land elsewhere.
  Histogram h;
  for (int i = 0; i < 7; ++i) h.record(1000);
  EXPECT_EQ(h.quantile(0.0), 1000u);
  EXPECT_EQ(h.quantile(0.5), 1000u);
  EXPECT_EQ(h.quantile(0.99), 1000u);
  EXPECT_EQ(h.quantile(1.0), 1000u);
}

TEST(Histogram, ResetClears) {
  REQUIRE_OBS_COMPILED_IN();
  Histogram h;
  h.record(123);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.quantile(0.5), 0u);
}

TEST(Registry, GetOrCreateReturnsSameObject) {
  Registry r;
  Counter& a = r.counter("x.count");
  Counter& b = r.counter("x.count");
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(r.size(), 1u);
  EXPECT_TRUE(r.contains("x.count"));
  EXPECT_FALSE(r.contains("y.count"));
}

TEST(RegistryDeathTest, KindCollisionPanics) {
  Registry r;
  r.counter("name");
  EXPECT_DEATH(r.gauge("name"), "registered as");
}

TEST(Registry, ResetValuesKeepsObjects) {
  Registry r;
  Counter& c = r.counter("c");
  c.inc(9);
  r.reset_values();
  EXPECT_EQ(c.value(), 0u);       // same object, zeroed
  EXPECT_EQ(&r.counter("c"), &c);
}

TEST(Registry, ConcurrentIncrementsExact) {
  REQUIRE_OBS_COMPILED_IN();
  Registry r;
  Counter& c = r.counter("shared");
  constexpr int kThreads = 8;
  constexpr u64 kPer = 10000;
  std::vector<std::thread> ts;
  for (int i = 0; i < kThreads; ++i)
    ts.emplace_back([&c] {
      for (u64 j = 0; j < kPer; ++j) c.inc();
    });
  for (auto& t : ts) t.join();
  EXPECT_EQ(c.value(), kThreads * kPer);
}

TEST(Registry, ConcurrentGetOrCreate) {
  REQUIRE_OBS_COMPILED_IN();
  Registry r;
  std::vector<std::thread> ts;
  for (int i = 0; i < 8; ++i)
    ts.emplace_back([&r] {
      for (int j = 0; j < 100; ++j) r.counter("same.name").inc();
    });
  for (auto& t : ts) t.join();
  EXPECT_EQ(r.size(), 1u);
  EXPECT_EQ(r.counter("same.name").value(), 800u);
}

TEST(Registry, JsonRoundTrip) {
  REQUIRE_OBS_COMPILED_IN();
  Registry r;
  r.counter("a.count").inc(42);
  r.gauge("b.gauge").set(-5);
  Histogram& h = r.histogram("c.hist");
  for (u64 v = 1; v <= 100; ++v) h.record(v);

  std::string j = r.json();
  double v = 0;
  ASSERT_TRUE(json_number(j, "a.count", &v));
  EXPECT_DOUBLE_EQ(v, 42.0);
  ASSERT_TRUE(json_number(j, "b.gauge", &v));
  EXPECT_DOUBLE_EQ(v, -5.0);
  ASSERT_TRUE(json_number(j, "c.hist/count", &v));
  EXPECT_DOUBLE_EQ(v, 100.0);
  ASSERT_TRUE(json_number(j, "c.hist/sum", &v));
  EXPECT_DOUBLE_EQ(v, 5050.0);
  ASSERT_TRUE(json_number(j, "c.hist/p50", &v));
  EXPECT_NEAR(v, 50.0, 13.0);
  EXPECT_FALSE(json_number(j, "missing", &v));
}

TEST(Registry, JsonEscapesControlCharacters) {
  // Metric names with quotes, backslashes, and C0 controls must serialize to
  // valid JSON (RFC 8259 bans raw controls inside strings); json_escape used
  // to pass \n & co. straight through, producing unparseable snapshots.
  Registry r;
  r.counter("with\"quote").inc(1);
  r.counter("with\\backslash").inc(2);
  r.counter("tab\there").inc(3);
  r.counter("newline\nhere").inc(4);
  r.counter(std::string("nul\x01") + "byte").inc(5);
  std::string j = r.json();
  EXPECT_NE(j.find("with\\\"quote"), std::string::npos);
  EXPECT_NE(j.find("with\\\\backslash"), std::string::npos);
  EXPECT_NE(j.find("tab\\there"), std::string::npos);
  EXPECT_NE(j.find("newline\\nhere"), std::string::npos);
  EXPECT_NE(j.find("nul\\u0001byte"), std::string::npos);
  // No raw control byte may survive into the serialized document.
  for (char c : j) EXPECT_FALSE(static_cast<unsigned char>(c) < 0x20 && c != '\n');
}

TEST(Registry, JsonEscapedNamesStillQueryable) {
  REQUIRE_OBS_COMPILED_IN();
  Registry r;
  r.counter("weird\tname").inc(9);
  double v = 0;
  // json_number escapes the key the same way, so lookups keep working.
  ASSERT_TRUE(json_number(r.json(), "weird\tname", &v));
  EXPECT_DOUBLE_EQ(v, 9.0);
}

TEST(Registry, GlobalIsSingleton) {
  EXPECT_EQ(&Registry::global(), &Registry::global());
}

TEST(Registry, CounterValueReadOnly) {
  REQUIRE_OBS_COMPILED_IN();
  Registry r;
  r.counter("c").inc(7);
  r.gauge("g").set(3);
  EXPECT_EQ(r.counter_value("c"), 7u);
  EXPECT_EQ(r.counter_value("g"), 0u);        // not a counter
  EXPECT_EQ(r.counter_value("missing"), 0u);  // absent: not created
  EXPECT_FALSE(r.contains("missing"));
}

TEST(Snapshot, CarriesAllThreeKinds) {
  REQUIRE_OBS_COMPILED_IN();
  Registry r;
  r.counter("c").inc(5);
  r.gauge("g").set(-2);
  r.histogram("h").record(100);
  Snapshot s = r.snapshot();
  EXPECT_EQ(s.num("c"), 5);
  EXPECT_EQ(s.num("g"), -2);
  EXPECT_EQ(s.num("h"), 1);  // histograms read as their count
  ASSERT_NE(s.find("h"), nullptr);
  EXPECT_EQ(s.find("h")->hist.sum, 100u);
  EXPECT_EQ(s.find("nope"), nullptr);
  EXPECT_EQ(s.num("nope"), 0);
}

TEST(Snapshot, DiffAllThreeKinds) {
  REQUIRE_OBS_COMPILED_IN();
  Registry r;
  Counter& c = r.counter("c");
  Gauge& g = r.gauge("g");
  Histogram& h = r.histogram("h");
  c.inc(10);
  g.set(5);
  h.record(100);
  Snapshot before = r.snapshot();
  c.inc(7);
  g.set(2);  // gauges can go down: diff is signed
  h.record(100);
  h.record(200);
  Snapshot after = r.snapshot();

  Snapshot d = Registry::diff(before, after);
  EXPECT_EQ(d.num("c"), 7);
  EXPECT_EQ(d.num("g"), -3);
  const SnapValue* hv = d.find("h");
  ASSERT_NE(hv, nullptr);
  EXPECT_EQ(hv->hist.count, 2u);
  EXPECT_EQ(hv->hist.sum, 300u);
  // Metrics created between the snapshots appear with their full value.
  r.counter("new").inc(4);
  d = Registry::diff(before, r.snapshot());
  EXPECT_EQ(d.num("new"), 4);
}

TEST(Expo, PrometheusTextFormat) {
  REQUIRE_OBS_COMPILED_IN();
  Registry r;
  r.counter("oracle.scan.probes").inc(42);
  r.gauge("bench.wall_ns").set(1000);
  Histogram& h = r.histogram("sat.solve_ns");
  h.record(3);
  h.record(100);
  std::string text = expo::prometheus_text(r.snapshot());
  EXPECT_NE(text.find("# TYPE crp_oracle_scan_probes counter"), std::string::npos);
  EXPECT_NE(text.find("crp_oracle_scan_probes 42"), std::string::npos);
  EXPECT_NE(text.find("# TYPE crp_bench_wall_ns gauge"), std::string::npos);
  EXPECT_NE(text.find("# TYPE crp_sat_solve_ns histogram"), std::string::npos);
  EXPECT_NE(text.find("crp_sat_solve_ns_bucket{le=\"+Inf\"} 2"), std::string::npos);
  EXPECT_NE(text.find("crp_sat_solve_ns_sum 103"), std::string::npos);
  EXPECT_NE(text.find("crp_sat_solve_ns_count 2"), std::string::npos);
  // Cumulative bucket series: the le="3" bucket holds 1 sample.
  EXPECT_NE(text.find("crp_sat_solve_ns_bucket{le=\"3\"} 1"), std::string::npos);
}

TEST(Expo, JsonCarriesBucketBoundaries) {
  REQUIRE_OBS_COMPILED_IN();
  Registry r;
  r.histogram("h").record(10);
  std::string j = expo::json(r.snapshot());
  u32 idx = Histogram::bucket_index(10);
  std::string expect = strf("[%u,%llu,%llu,1]", idx,
                            static_cast<unsigned long long>(Histogram::bucket_lo(idx)),
                            static_cast<unsigned long long>(Histogram::bucket_hi(idx)));
  EXPECT_NE(j.find(expect), std::string::npos) << j;
}

TEST(Expo, ParseBenchJsonRoundTrip) {
  REQUIRE_OBS_COMPILED_IN();
  // Feed the parser exactly what BenchSession writes.
  Registry r;
  r.counter("vm.instr_retired").inc(12345);
  r.gauge("bench.wall_ns").set(999);
  Histogram& h = r.histogram("sat.solve_ns");
  for (u64 v = 1; v <= 100; ++v) h.record(v);
  std::string body = "{\n\"bench\": \"t1\",\n\"schema\": 1,\n\"metrics\": ";
  body += r.json();
  body += "\n}\n";

  expo::BenchDoc doc;
  ASSERT_TRUE(expo::parse_bench_json(body, &doc));
  EXPECT_EQ(doc.bench, "t1");
  EXPECT_EQ(doc.schema, 1);
  EXPECT_DOUBLE_EQ(doc.get("vm.instr_retired"), 12345.0);
  EXPECT_DOUBLE_EQ(doc.get("bench.wall_ns"), 999.0);
  EXPECT_DOUBLE_EQ(doc.get("sat.solve_ns/count"), 100.0);
  EXPECT_DOUBLE_EQ(doc.get("sat.solve_ns/sum"), 5050.0);
  EXPECT_TRUE(doc.has("sat.solve_ns/p95"));
  EXPECT_FALSE(doc.has("missing"));
  EXPECT_DOUBLE_EQ(doc.get("missing", -1.0), -1.0);

  expo::BenchDoc bad;
  EXPECT_FALSE(expo::parse_bench_json("not json at all", &bad));
}

TEST(ScopedTimerTest, RecordsOneSample) {
  REQUIRE_OBS_COMPILED_IN();
  Histogram h;
  { ScopedTimer t(h); }
  EXPECT_EQ(h.count(), 1u);
}

TEST(ScopedVirtualTimerTest, RecordsClockDelta) {
  REQUIRE_OBS_COMPILED_IN();
  Histogram h;
  u64 clock = 1000;
  {
    ScopedVirtualTimer t(h, &clock);
    clock = 5000;
  }
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.sum(), 4000u);
}

TEST(JournalTest, CapacityBoundAndDropCount) {
  REQUIRE_OBS_COMPILED_IN();
  Journal j(4);
  for (u64 i = 0; i < 10; ++i) j.instant("e", "t", i);
  EXPECT_EQ(j.size(), 4u);
  EXPECT_EQ(j.dropped(), 6u);
  j.clear();
  EXPECT_EQ(j.size(), 0u);
}

TEST(JournalTest, ChromeTraceSortedAndValid) {
  REQUIRE_OBS_COMPILED_IN();
  Journal j(16);
  // Emit out of order; the exporter must sort by timestamp.
  j.span("b", "cat", 200, 10);
  j.span("a", "cat", 100, 10);
  j.instant("mark", "cat", 150);
  std::string out = j.chrome_trace_json();
  EXPECT_EQ(out.front(), '[');
  EXPECT_EQ(out.back(), ']');
  size_t pa = out.find("\"ts\":100");
  size_t pm = out.find("\"ts\":150");
  size_t pb = out.find("\"ts\":200");
  ASSERT_NE(pa, std::string::npos);
  ASSERT_NE(pm, std::string::npos);
  ASSERT_NE(pb, std::string::npos);
  EXPECT_LT(pa, pm);
  EXPECT_LT(pm, pb);
  EXPECT_NE(out.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(out.find("\"ph\":\"i\""), std::string::npos);
}

TEST(JournalTest, DisabledJournalRecordsNothing) {
  REQUIRE_OBS_COMPILED_IN();
  Journal j(16);
  set_runtime_enabled(false);
  j.instant("e", "t", 1);
  set_runtime_enabled(true);
  EXPECT_EQ(j.size(), 0u);
}

TEST(Preregister, ChaosAndCacheCountersAreInTheSnapshotSchema) {
  REQUIRE_OBS_COMPILED_IN();
  // Regression: the exposition schema must carry the fault-injection and
  // artifact-cache counters even on clean runs (value 0), so a snapshot
  // diff between a clean and a chaos run shows exactly what was injected
  // instead of silently omitting untouched layers.
  preregister_core_metrics();
  Snapshot snap = Registry::global().snapshot();
  for (u32 i = 0; i < chaos::kNumPoints; ++i) {
    std::string name = std::string("chaos.injected.") +
                       chaos::point_name(static_cast<chaos::Point>(i));
    std::replace(name.begin(), name.end(), '-', '_');
    EXPECT_NE(snap.find(name), nullptr) << name;
  }
  for (const char* name : {"pipeline.cache.hits", "pipeline.cache.misses",
                           "pipeline.cache.stores", "pipeline.cache.corrupt",
                           "pipeline.campaign.targets_run", "bench.instr_virtual"})
    EXPECT_NE(snap.find(name), nullptr) << name;

  // The counters flow through both exposition formats under their names.
  std::string prom = expo::prometheus_text(snap);
  EXPECT_NE(prom.find("crp_chaos_injected_sys_efault"), std::string::npos);
  EXPECT_NE(prom.find("crp_chaos_injected_cache_corrupt"), std::string::npos);
  EXPECT_NE(prom.find("crp_pipeline_cache_corrupt"), std::string::npos);

  // And a diff across an injection is attributed to the right counter.
  Snapshot before = Registry::global().snapshot();
  Registry::global().counter("chaos.injected.vm_av").inc(3);
  Snapshot d = Registry::diff(before, Registry::global().snapshot());
  EXPECT_EQ(d.num("chaos.injected.vm_av"), 3);
  EXPECT_EQ(d.num("chaos.injected.sys_efault"), 0);
}

}  // namespace
}  // namespace crp::obs
