// crp::obs::Profiler — virtual-time sampling: context scopes, exact heat
// tallies, deterministic exports, and the two acceptance properties of the
// profiler subsystem: identical hot-block tables at any job count, and
// crash-free coexistence with the chaos engine.

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "chaos/chaos.h"
#include "obs/obs.h"
#include "obs/prof.h"
#include "pipeline/campaign.h"
#include "targets/nginx.h"

namespace crp::obs {
namespace {

// Sample-recording tests only make sense when instrumentation is compiled
// in; under -DCRP_OBS_DISABLED Profiler::record() is a no-op by design
// (same contract as every other obs sink).
#define REQUIRE_OBS_COMPILED_IN() \
  if (!kCompiledIn) GTEST_SKIP() << "observability compiled out (CRP_OBS_DISABLED)"

TEST(ProfFlags, NameRendering) {
  EXPECT_EQ(prof_flags_name(0), "-");
  EXPECT_EQ(prof_flags_name(kProfProbe), "probe");
  EXPECT_EQ(prof_flags_name(kProfTaint), "taint");
  EXPECT_EQ(prof_flags_name(kProfFilter), "filter");
  EXPECT_EQ(prof_flags_name(kProfProbe | kProfFilter), "probe|filter");
  EXPECT_EQ(prof_flags_name(kProfProbe | kProfTaint | kProfFilter),
            "probe|taint|filter");
}

TEST(Profiler, InternIsStableAndZeroIsNone) {
  Profiler p;
  EXPECT_EQ(p.name_of(0), "-");
  u32 a = p.intern("stage-a");
  u32 b = p.intern("stage-b");
  EXPECT_NE(a, 0u);
  EXPECT_NE(a, b);
  EXPECT_EQ(p.intern("stage-a"), a);  // idempotent
  EXPECT_EQ(p.name_of(a), "stage-a");
  EXPECT_EQ(p.name_of(b), "stage-b");
  EXPECT_EQ(p.name_of(999), "-");  // out of range never throws
}

TEST(Profiler, ContextScopesNestAndRestore) {
  Profiler& g = Profiler::global();
  u64 prev_interval = g.interval();
  g.set_interval(100);  // scopes only intern while enabled
  ProfContext before = Profiler::context();
  {
    ScopedProfStage stage("test-stage");
    ScopedProfTarget target("test-target");
    ScopedProfFlags flags(kProfProbe);
    EXPECT_NE(Profiler::context().stage, 0u);
    EXPECT_NE(Profiler::context().target, 0u);
    EXPECT_EQ(Profiler::context().flags & kProfProbe, kProfProbe);
    EXPECT_EQ(g.name_of(Profiler::context().stage), "test-stage");
    {
      ScopedProfStage inner("inner-stage");
      EXPECT_EQ(g.name_of(Profiler::context().stage), "inner-stage");
      ScopedProfFlags more(kProfTaint);
      EXPECT_EQ(Profiler::context().flags & (kProfProbe | kProfTaint),
                kProfProbe | kProfTaint);
    }
    EXPECT_EQ(g.name_of(Profiler::context().stage), "test-stage");
    EXPECT_EQ(Profiler::context().flags & kProfTaint, 0);
  }
  EXPECT_EQ(Profiler::context().stage, before.stage);
  EXPECT_EQ(Profiler::context().target, before.target);
  EXPECT_EQ(Profiler::context().flags, before.flags);
  g.set_interval(prev_interval);
  g.clear();
}

TEST(Profiler, DisabledScopesNeverIntern) {
  Profiler& g = Profiler::global();
  u64 prev_interval = g.interval();
  g.set_interval(0);
  {
    ScopedProfStage stage("unseen-stage");
    ScopedProfTarget target("unseen-target");
    EXPECT_EQ(Profiler::context().stage, 0u);
    EXPECT_EQ(Profiler::context().target, 0u);
  }
  g.set_interval(prev_interval);
}

TEST(Profiler, HeatIsExactAndSortedDeterministically) {
  REQUIRE_OBS_COMPILED_IN();
  Profiler p;
  p.set_interval(1);
  u32 blk_a = p.intern("mod+0x10");
  u32 blk_b = p.intern("mod+0x20");
  u32 stage = p.intern("verify");
  for (int i = 0; i < 5; ++i)
    p.record({static_cast<u64>(i), 0x10, blk_a, stage, 0, 0, 0});
  for (int i = 0; i < 3; ++i)
    p.record({static_cast<u64>(i), 0x20, blk_b, stage, 0, 0, 0});

  std::vector<Profiler::HeatRow> rows = p.heat();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].block, "mod+0x10");  // samples desc
  EXPECT_EQ(rows[0].samples, 5u);
  EXPECT_EQ(rows[0].stage, "verify");
  EXPECT_EQ(rows[1].block, "mod+0x20");
  EXPECT_EQ(rows[1].samples, 3u);
  EXPECT_EQ(p.samples(), 8u);

  auto hot = p.hot_blocks(1);
  ASSERT_EQ(hot.size(), 1u);
  EXPECT_EQ(hot[0].first, "mod+0x10");
  EXPECT_EQ(hot[0].second, 5u);

  p.clear();
  EXPECT_EQ(p.samples(), 0u);
  EXPECT_TRUE(p.heat().empty());
}

TEST(Profiler, HeatTieBreaksOnNamesNotIds) {
  // Two interleavings that intern names in opposite orders must export the
  // same table: the sort key is the resolved name, never the id.
  auto run = [](bool swap) {
    Profiler p;
    p.set_interval(1);
    u32 first = p.intern(swap ? "mod+0x200" : "mod+0x100");
    u32 second = p.intern(swap ? "mod+0x100" : "mod+0x200");
    p.record({0, 0, first, 0, 0, 0, 0});
    p.record({1, 0, second, 0, 0, 0, 0});
    return p.heat();
  };
  EXPECT_EQ(run(false), run(true));
}

TEST(Profiler, CollapsedAndReportShapes) {
  REQUIRE_OBS_COMPILED_IN();
  Profiler p;
  p.set_interval(10);
  u32 blk = p.intern("nginx_sim+0x40");
  u32 stage = p.intern("verify");
  u32 target = p.intern("nginx_sim");
  p.record({0, 0x40, blk, stage, target, 0, kProfProbe});

  std::string folded = p.collapsed();
  EXPECT_NE(folded.find("nginx_sim;verify;-;nginx_sim+0x40 [probe] 1"),
            std::string::npos)
      << folded;

  std::string json = p.report_json("unit", 10);
  EXPECT_NE(json.find("\"prof\": \"unit\""), std::string::npos);
  EXPECT_NE(json.find("\"interval\": 10"), std::string::npos);
  EXPECT_NE(json.find("\"rank\": 1"), std::string::npos);
  EXPECT_NE(json.find("nginx_sim+0x40"), std::string::npos);
  // Bit-identity contract: no scheduling-dependent fields in the report.
  EXPECT_EQ(json.find("dropped"), std::string::npos);
}

TEST(Profiler, SamplesSnapshotIsSortedByVirtualTime) {
  REQUIRE_OBS_COMPILED_IN();
  Profiler p;
  p.set_interval(1);
  u32 blk = p.intern("m+0x0");
  p.record({30, 0, blk, 0, 0, 0, 0});
  p.record({10, 0, blk, 0, 0, 0, 0});
  p.record({20, 0, blk, 0, 0, 0, 0});
  std::vector<ProfSample> snap = p.samples_snapshot();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap[0].vcount, 10u);
  EXPECT_EQ(snap[1].vcount, 20u);
  EXPECT_EQ(snap[2].vcount, 30u);
}

// --- the determinism acceptance property -------------------------------------

/// One profiled syscall-funnel scan with the pool forced to `jobs` workers.
/// Fresh ArtifactStore so every run computes instead of replaying the cache.
std::string profiled_scan_collapsed(int jobs) {
  Profiler& g = Profiler::global();
  g.clear();
  analysis::TargetProgram prog = targets::make_nginx();
  pipeline::ArtifactStore store;
  pipeline::Campaign campaign({}, &store);
  pipeline::ServerScan scan = campaign.scan_program(prog, jobs);
  EXPECT_FALSE(scan.cache_hit);
  EXPECT_GT(g.samples(), 0u) << "profiled scan took no samples";
  return g.collapsed();
}

TEST(Profiler, HotBlockTableIdenticalAcrossJobCounts) {
  REQUIRE_OBS_COMPILED_IN();
  Profiler& g = Profiler::global();
  u64 prev_interval = g.interval();
  g.set_interval(500);  // fine-grained: thousands of samples per scan

  std::string serial = profiled_scan_collapsed(1);
  std::string parallel = profiled_scan_collapsed(4);
  EXPECT_FALSE(serial.empty());
  EXPECT_EQ(serial, parallel);

  g.set_interval(prev_interval);
  g.clear();
}

// --- profiler + chaos coexistence --------------------------------------------

TEST(Profiler, ChaosSweepStaysCrashFree) {
  REQUIRE_OBS_COMPILED_IN();
  Profiler& g = Profiler::global();
  u64 prev_interval = g.interval();
  g.set_interval(1000);

  analysis::TargetProgram prog = targets::make_nginx();
  for (u64 seed = 1; seed <= 8; ++seed) {
    chaos::FaultPlan plan;
    plan.seed = seed;
    plan.rate = 16;
    plan.points = chaos::kIoPoints;
    chaos::ScopedPlan scoped(plan);

    g.clear();
    pipeline::ArtifactStore store;
    pipeline::Campaign campaign({}, &store);
    pipeline::ServerScan scan = campaign.scan_program(prog, 2);
    // The scan must complete and sample under fault injection; the scan
    // rendering its table proves no probe escaped as a real crash.
    EXPECT_GT(g.samples(), 0u) << "seed " << seed;
    EXPECT_FALSE(scan.result.candidates.empty()) << "seed " << seed;
  }

  g.set_interval(prev_interval);
  g.clear();
}

}  // namespace
}  // namespace crp::obs
