#include <gtest/gtest.h>

#include "analysis/seh_analysis.h"
#include "analysis/syscall_scanner.h"
#include "analysis/veh_scanner.h"
#include "targets/browser.h"
#include "targets/common.h"
#include "targets/dll_corpus.h"
#include "targets/servers.h"
#include "trace/tracer.h"

namespace crp::targets {
namespace {

using analysis::SyscallScanner;
using analysis::Verdict;

/// Find the verified verdict for (syscall, arg 2) in a scan result.
Verdict verdict_of(const analysis::SyscallScanResult& res, os::Sys nr) {
  for (const auto& c : res.candidates)
    if (c.syscall == nr) return c.verdict;
  return Verdict::kUntested;
}

// --- servers: liveness -------------------------------------------------------------

class ServerLiveness : public ::testing::TestWithParam<int> {};

TEST_P(ServerLiveness, StartsAndServes) {
  auto servers = all_servers();
  const auto& t = servers[static_cast<size_t>(GetParam())];
  os::Kernel k;
  int pid = t.instantiate(k, 2024);
  k.run(4'000'000);
  EXPECT_TRUE(k.proc(pid).alive()) << t.name;
  EXPECT_TRUE(t.service_alive(k, pid)) << t.name;
  EXPECT_TRUE(k.proc(pid).alive()) << t.name;
}

std::string server_case_name(const ::testing::TestParamInfo<int>& info) {
  static const char* names[] = {"nginx", "cherokee", "lighttpd", "memcached", "postgres"};
  return names[info.param];
}

INSTANTIATE_TEST_SUITE_P(AllFive, ServerLiveness, ::testing::Range(0, 5), server_case_name);

// --- servers: workload survives repeatedly ------------------------------------------

TEST(Servers, WorkloadIsCrashFree) {
  for (auto& t : all_servers()) {
    os::Kernel k;
    int pid = t.instantiate(k, 31);
    t.workload(k, pid);
    // Main process alive (postgres workers may have exited gracefully).
    EXPECT_TRUE(k.proc(pid).alive()) << t.name;
    for (int p : k.pids()) {
      const os::Process* proc = k.find_proc(p);
      EXPECT_FALSE(proc->exit_info().crashed) << t.name << " pid " << p;
    }
  }
}

// --- the paper's headline verdicts (Table I greens + the FP) -------------------------

TEST(Discovery, NginxRecvIsUsable) {
  auto t = make_nginx();
  SyscallScanner scanner(t);
  auto res = scanner.discover();
  analysis::Candidate* recv = nullptr;
  for (auto& c : res.candidates)
    if (c.syscall == os::Sys::kRecv) recv = &c;
  ASSERT_NE(recv, nullptr);
  EXPECT_TRUE(recv->controllable_home);  // ngx_buf_t heap field
  ASSERT_TRUE(recv->pointer_home.has_value());
  scanner.verify(*recv);
  EXPECT_EQ(recv->verdict, Verdict::kUsable);
}

TEST(Discovery, LighttpdReadIsUsableAndTainted) {
  auto t = make_lighttpd();
  SyscallScanner scanner(t);
  auto res = scanner.discover();
  analysis::Candidate* read = nullptr;
  for (auto& c : res.candidates)
    if (c.syscall == os::Sys::kRead && c.pointer_arg == 2) read = &c;
  ASSERT_NE(read, nullptr);
  EXPECT_NE(read->taint_mask, 0u);  // range offset taints the pointer
  scanner.verify(*read);
  EXPECT_EQ(read->verdict, Verdict::kUsable);
}

TEST(Discovery, CherokeeEpollIsUsable) {
  auto t = make_cherokee();
  SyscallScanner scanner(t);
  auto res = scanner.discover();
  analysis::Candidate* ep = nullptr;
  for (auto& c : res.candidates)
    if (c.syscall == os::Sys::kEpollWait) ep = &c;
  ASSERT_NE(ep, nullptr);
  EXPECT_TRUE(ep->controllable_home);  // fdpoll heap field
  scanner.verify(*ep);
  EXPECT_EQ(ep->verdict, Verdict::kUsable);
}

TEST(Discovery, MemcachedEpollIsTheFalsePositive) {
  auto t = make_memcached();
  SyscallScanner scanner(t);
  auto res = scanner.discover();
  analysis::Candidate* ep = nullptr;
  analysis::Candidate* rd = nullptr;
  for (auto& c : res.candidates) {
    if (c.syscall == os::Sys::kEpollWait) ep = &c;
    if (c.syscall == os::Sys::kRead) rd = &c;
  }
  ASSERT_NE(ep, nullptr);
  ASSERT_NE(rd, nullptr);
  scanner.verify(*ep);
  scanner.verify(*rd);
  EXPECT_EQ(ep->verdict, Verdict::kFalsePositive);  // §V-A: thread dies silently
  EXPECT_EQ(rd->verdict, Verdict::kUsable);
}

TEST(Discovery, MemcachedFpInvisibleWithoutLivenessCheck) {
  // The paper's initial framework lacked the service-liveness strategy and
  // reported the candidate as valid; reproduce that mode.
  auto t = make_memcached();
  analysis::SyscallScanOptions opts;
  opts.check_service_liveness = false;
  SyscallScanner scanner(t, opts);
  auto res = scanner.discover();
  analysis::Candidate* ep = nullptr;
  for (auto& c : res.candidates)
    if (c.syscall == os::Sys::kEpollWait) ep = &c;
  ASSERT_NE(ep, nullptr);
  scanner.verify(*ep);
  EXPECT_EQ(ep->verdict, Verdict::kUsable);  // the naive (wrong) verdict
}

TEST(Discovery, PostgresWorkerEpollIsUsable) {
  auto t = make_postgres();
  SyscallScanner scanner(t);
  auto res = scanner.discover();
  analysis::Candidate* ep = nullptr;
  for (auto& c : res.candidates)
    if (c.syscall == os::Sys::kEpollWait) ep = &c;
  ASSERT_NE(ep, nullptr);  // discovered inside the worker process
  scanner.verify(*ep);
  EXPECT_EQ(ep->verdict, Verdict::kUsable);
}

TEST(Discovery, NonControllablePathPointersStayNegative) {
  auto t = make_nginx();
  SyscallScanner scanner(t);
  auto res = scanner.discover();
  for (auto& c : res.candidates) scanner.verify(c);
  EXPECT_EQ(verdict_of(res, os::Sys::kOpen), Verdict::kNotControllable);
  EXPECT_EQ(verdict_of(res, os::Sys::kChmod), Verdict::kNotControllable);
  EXPECT_EQ(verdict_of(res, os::Sys::kMkdir), Verdict::kNotControllable);
}

// --- DLL corpus -----------------------------------------------------------------------

TEST(DllCorpus, PlantedCountsAreRecoveredStatically) {
  DllSpec spec{"testdll", isa::Machine::kX64, 20, 8, 5, 12, 6};
  GeneratedDll dll = generate_dll(spec, 99);
  analysis::SehExtractor ex;
  ex.add_image(dll.image);
  EXPECT_EQ(ex.handlers().size(), 20u);

  analysis::FilterClassifier fc;
  auto filters = fc.classify_all(ex);
  auto stats = analysis::CoverageXref::compute(ex, filters, nullptr, nullptr);
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].guarded_total, 20u);
  EXPECT_EQ(stats[0].guarded_av_capable, 8u);
  EXPECT_EQ(stats[0].filters_total, 12u);
  EXPECT_EQ(stats[0].filters_av_capable, 6u);
}

TEST(DllCorpus, DeterministicForSeed) {
  DllSpec spec{"d", isa::Machine::kX64, 10, 4, 2, 6, 3};
  auto a = generate_dll(spec, 5);
  auto b = generate_dll(spec, 5);
  EXPECT_EQ(isa::write_image(*a.image), isa::write_image(*b.image));
  auto c = generate_dll(spec, 6);
  EXPECT_NE(isa::write_image(*a.image), isa::write_image(*c.image));
}

TEST(DllCorpus, HotExportsAreCallable) {
  DllSpec spec{"d", isa::Machine::kX64, 10, 4, 4, 6, 3};
  auto dll = generate_dll(spec, 5);
  EXPECT_FALSE(dll.hot_exports.empty());
  os::Kernel k;
  int pid = k.create_process("host", vm::Personality::kWindows, 3);
  k.proc(pid).load(dll.image);
  // Call each hot export via call_subroutine; none may crash.
  os::Process& p = k.proc(pid);
  gva_t stack = p.machine().layout().place(mem::RegionKind::kStack, 65536, "s");
  CRP_CHECK(p.machine().mem().map(stack, 65536, mem::kPermR | mem::kPermW));
  vm::Cpu cpu;
  cpu.sp() = stack + 65000;
  const vm::LoadedModule* mod = p.machine().module_named("d");
  for (const auto& name : dll.hot_exports) {
    gva_t fn = mod->export_addr(name);
    ASSERT_NE(fn, 0u);
    EXPECT_TRUE(p.machine().call_subroutine(cpu, fn, {}).has_value()) << name;
  }
}

TEST(DllCorpus, PaperSpecsSatisfyGeneratorInvariants) {
  for (const auto& spec : paper_dll_specs()) {
    EXPECT_GE(spec.guarded, spec.guarded_av) << spec.name;
    EXPECT_GE(spec.guarded_av, spec.filters_av) << spec.name;
    EXPECT_GE(spec.guarded - spec.guarded_av, spec.filters_total - spec.filters_av)
        << spec.name;
    // Must not panic:
    generate_dll(spec, 1);
  }
}

// --- browser --------------------------------------------------------------------------

TEST(Browser, IeStartsAndRunsScripts) {
  os::Kernel k;
  BrowserSim b(k, {BrowserSim::Kind::kIE, 7, 0});
  EXPECT_TRUE(k.proc(b.pid()).alive());
  EXPECT_NE(b.script_engine_addr(), 0u);
  EXPECT_EQ(b.mutx_status(), 0u);
  b.visit_page(1);
  b.pump();
  EXPECT_TRUE(k.proc(b.pid()).alive());
  EXPECT_EQ(b.pending_commands(), 0u);
}

TEST(Browser, MutxEnterSurvivesCorruptDebugInfo) {
  // The §VI-A primitive end-to-end at the target level: corrupt debug_info,
  // trigger a script, observe status flip, browser stays alive.
  os::Kernel k;
  BrowserSim b(k, {BrowserSim::Kind::kIE, 7, 0});
  gva_t engine = b.script_engine_addr();
  ASSERT_NE(engine, 0u);
  auto& mem = b.proc().machine().mem();
  // Force the contended path + poison debug_info.
  mem.poke_u64(engine + 8, 0xC5C5);
  mem.poke_u64(engine + 16, 1);
  mem.poke_u64(engine + 24, 0);
  mem.poke_u64(engine + 32, 0x41414141000);
  b.run_script(0);
  b.pump();
  EXPECT_EQ(b.mutx_status(), 1u);  // handler ran
  EXPECT_TRUE(k.proc(b.pid()).alive());
  EXPECT_GE(b.proc().machine().exception_stats().handled_seh, 1u);
  EXPECT_EQ(b.proc().machine().exception_stats().unhandled, 0u);
}

TEST(Browser, FirefoxPollThreadProbes) {
  os::Kernel k;
  BrowserSim b(k, {BrowserSim::Kind::kFirefox, 7, 0});
  gva_t slot = b.probe_slot_addr();
  ASSERT_NE(slot, 0u);
  auto& mem = b.proc().machine().mem();
  // Probe a mapped address (the slot itself).
  mem.poke_u64(slot + 16, 0);
  mem.poke_u64(slot + 0, slot);
  u64 status = 0;
  k.run_until(
      [&] {
        mem.peek_u64(slot + 16, &status);
        return status != 0;
      },
      8'000'000);
  EXPECT_EQ(status, 2u);
  // Probe an unmapped address.
  mem.poke_u64(slot + 16, 0);
  mem.poke_u64(slot + 0, 0x13371337000);
  status = 0;
  k.run_until(
      [&] {
        mem.peek_u64(slot + 16, &status);
        return status != 0;
      },
      8'000'000);
  EXPECT_EQ(status, 1u);
  EXPECT_TRUE(k.proc(b.pid()).alive());
}

TEST(Browser, FirefoxVehIsFoundByVehScannerNotStatics) {
  os::Kernel k;
  BrowserSim b(k, {BrowserSim::Kind::kFirefox, 7, 0});
  trace::Tracer tracer(k, b.proc());
  // Re-run startup registration? The AddVeh happened before the tracer
  // attached; drive one more registration round via a fresh browser.
  os::Kernel k2;
  BrowserSim b2(k2, {BrowserSim::Kind::kFirefox, 8, 0});
  // Attach tracer BEFORE start is not possible via BrowserSim; instead use
  // the machine's VEH chain + static check here:
  EXPECT_EQ(k2.proc(b2.pid()).machine().veh_chain().size(), 1u);
  // Static extraction over firefox_sim's own image sees no scope entry for
  // the VEH (it has none) — the §VII-A blind spot.
  analysis::SehExtractor ex;
  const vm::LoadedModule* main_mod = b2.proc().machine().module_named("firefox_sim");
  ASSERT_NE(main_mod, nullptr);
  ex.add_image(main_mod->image);
  for (const auto& h : ex.handlers()) {
    gva_t veh = k2.proc(b2.pid()).machine().veh_chain()[0];
    u64 veh_off = veh - main_mod->code_base();
    EXPECT_NE(h.scope.filter, veh_off);
  }
}

TEST(Browser, CrawlTouchesEveryHotExport) {
  os::Kernel k;
  BrowserSim b(k, {BrowserSim::Kind::kIE, 21, 0});
  trace::Tracer tracer(k, b.proc());
  b.crawl();
  b.pump(120'000'000);
  ASSERT_EQ(b.pending_commands(), 0u);
  os::Process& p = b.proc();
  for (const auto& d : b.dlls()) {
    const vm::LoadedModule* mod = p.machine().module_named(d.image->name);
    ASSERT_NE(mod, nullptr);
    for (const auto& name : d.hot_exports) {
      gva_t fn = mod->export_addr(name);
      EXPECT_GT(tracer.hit_count(fn), 0u) << d.image->name << "!" << name;
    }
  }
}

// --- misc helpers ------------------------------------------------------------------------

TEST(Common, HiddenRegionHasNoReferences) {
  os::Kernel k;
  int pid = k.create_process("p", vm::Personality::kLinux, 3);
  os::Process& p = k.proc(pid);
  p.heap_alloc(8192, mem::kPermR | mem::kPermW);
  gva_t hidden = plant_hidden_region(p, 8192, 0xFEEDFACE);
  EXPECT_TRUE(p.machine().mem().is_mapped(hidden));
  // No mapped word outside the region contains a pointer into it.
  for (const auto& r : p.machine().mem().regions()) {
    if (r.begin == hidden) continue;
    for (gva_t a = r.begin; a + 8 <= r.end; a += 8) {
      u64 v = 0;
      p.machine().mem().peek_u64(a, &v);
      EXPECT_FALSE(v >= hidden && v < hidden + 8192) << std::hex << a;
    }
  }
}

TEST(Common, WireCommandLayout) {
  std::string c = wire_command(0x1122, 0x3344);
  ASSERT_EQ(c.size(), 16u);
  EXPECT_EQ(static_cast<u8>(c[0]), 0x22);
  EXPECT_EQ(static_cast<u8>(c[1]), 0x11);
  EXPECT_EQ(static_cast<u8>(c[8]), 0x44);
  EXPECT_EQ(static_cast<u8>(c[9]), 0x33);
}

}  // namespace
}  // namespace crp::targets

// Appended: full §VII-A extension flow — the VehScanner discovering the
// Firefox simulacrum's runtime-registered vectored handler from a real
// traced startup.
#include "analysis/veh_scanner.h"

namespace crp::targets {
namespace {

TEST(Browser, VehScannerDiscoversFirefoxOracleEndToEnd) {
  os::Kernel k;
  BrowserSim::Options opts;
  opts.kind = BrowserSim::Kind::kFirefox;
  opts.seed = 99;
  opts.defer_start = true;  // tracer must see the startup registration
  BrowserSim b(k, opts);
  trace::Tracer tracer(k, b.proc());
  b.start();

  auto handlers = analysis::VehScanner::scan(tracer, b.proc());
  ASSERT_EQ(handlers.size(), 1u);
  EXPECT_EQ(handlers[0].module, "firefox_sim");
  EXPECT_EQ(handlers[0].verdict, analysis::FilterVerdict::kAcceptsAv);
  auto cands = analysis::VehScanner::candidates(handlers, "firefox_sim");
  ASSERT_EQ(cands.size(), 1u);
  EXPECT_NE(cands[0].note.find("vectored"), std::string::npos);
}

TEST(Browser, DeferStartIsInertUntilStarted) {
  os::Kernel k;
  BrowserSim::Options opts;
  opts.kind = BrowserSim::Kind::kIE;
  opts.seed = 100;
  opts.defer_start = true;
  BrowserSim b(k, opts);
  EXPECT_EQ(b.script_engine_addr(), 0u);  // JsInit has not run
  b.start();
  EXPECT_NE(b.script_engine_addr(), 0u);
  b.start();  // idempotent
  EXPECT_TRUE(k.proc(b.pid()).alive());
}

}  // namespace
}  // namespace crp::targets

// Appended: the Linux §III-B class — managed-runtime SIGSEGV recovery as a
// crash-resistant primitive, discovered by the SignalScanner.
#include "analysis/signal_scanner.h"
#include "targets/jvm.h"

namespace crp::targets {
namespace {

TEST(Jvm, ServesAndSurvivesNullDeref) {
  os::Kernel k;
  auto t = make_jvm();
  int pid = t.instantiate(k, 3003);
  k.run(2'000'000);
  ASSERT_TRUE(t.service_alive(k, pid));

  auto await = [&](os::ClientConn& c, size_t want) {
    std::string got;
    k.run_until(
        [&] {
          got += c.recv_all();
          return got.size() >= want;
        },
        5'000'000);
    return got;
  };
  // Healthy query.
  auto c = k.connect(kJvmPort);
  ASSERT_TRUE(c.has_value());
  c->send(wire_command(kOpQuery));
  EXPECT_EQ(await(*c, 4), "VAL:");
  // Corrupt the object pointer -> implicit null check fires, no crash.
  gva_t cell = jvm_object_ref_addr(k.proc(pid));
  ASSERT_NE(cell, 0u);
  k.proc(pid).machine().mem().poke_u64(cell, 0x7007bad0000ull);
  c->send(wire_command(kOpQuery));
  EXPECT_EQ(await(*c, 4), "NPE!");
  EXPECT_TRUE(k.proc(pid).alive());
  EXPECT_GE(k.proc(pid).machine().exception_stats().handled_signal, 1u);
  c->close();
}

TEST(Jvm, ObjectPointerIsAReadProbe) {
  // The NPE flag is a clean mapped/unmapped oracle over repeated probes.
  os::Kernel k;
  auto t = make_jvm();
  int pid = t.instantiate(k, 3004);
  k.run(2'000'000);
  gva_t cell = jvm_object_ref_addr(k.proc(pid));
  gva_t hidden = plant_hidden_region(k.proc(pid), 2 * 4096, 0x11);
  auto c = k.connect(kJvmPort);
  ASSERT_TRUE(c.has_value());
  auto probe = [&](gva_t addr) {
    k.proc(pid).machine().mem().poke_u64(cell, addr);
    c->send(wire_command(kOpQuery));
    std::string got;
    k.run_until(
        [&] {
          got += c->recv_all();
          return got.size() >= 4;
        },
        5'000'000);
    return got;
  };
  EXPECT_EQ(probe(hidden), "VAL:");
  EXPECT_EQ(probe(0x606060000000ull), "NPE!");
  EXPECT_EQ(probe(hidden + 4096), "VAL:");
  EXPECT_TRUE(k.proc(pid).alive());
  EXPECT_EQ(k.proc(pid).machine().exception_stats().unhandled, 0u);
}

TEST(Jvm, SignalScannerFindsTheRecoveringHandler) {
  os::Kernel k;
  auto t = make_jvm();
  int pid = t.instantiate(k, 3005);
  k.run(2'000'000);  // handler installed during startup
  auto handlers = analysis::SignalScanner::scan(k.proc(pid));
  ASSERT_EQ(handlers.size(), 1u);
  EXPECT_EQ(handlers[0].signo, os::kSigsegv);
  EXPECT_EQ(handlers[0].module, "jvm_sim");
  EXPECT_EQ(handlers[0].verdict, analysis::FilterVerdict::kAcceptsAv);
  auto cands = analysis::SignalScanner::candidates(handlers, "jvm_sim");
  ASSERT_EQ(cands.size(), 1u);
  EXPECT_NE(cands[0].note.find("signal handler"), std::string::npos);
}

TEST(Jvm, SignalScannerRejectsNonRecoveringHandler) {
  // A logging-only handler (no ucontext edit) must not be a candidate.
  using isa::Assembler;
  using isa::Reg;
  Assembler a("logger");
  a.label("e");
  a.lea_pc(Reg::R3, "h");
  a.lea_pc(Reg::R2, "desc");
  a.store(Reg::R2, 0, Reg::R3, 8);
  a.movi(Reg::R1, 11);
  a.movi(Reg::R0, static_cast<i64>(os::Sys::kSigaction));
  a.syscall();
  a.label("spin");
  a.jmp("spin");
  a.label("h");  // counts faults but does not recover
  a.lea_pc(Reg::R4, "count");
  a.load(Reg::R5, Reg::R4, 8);
  a.addi(Reg::R5, 1);
  a.store(Reg::R4, 0, Reg::R5, 8);
  a.ret();
  a.set_entry("e");
  a.data_u64("desc", 0);
  a.data_u64("count", 0);
  os::Kernel k;
  int pid = k.create_process("logger", vm::Personality::kLinux, 5);
  k.proc(pid).load(std::make_shared<isa::Image>(a.build()));
  k.start_process(pid);
  k.run(10000);
  auto handlers = analysis::SignalScanner::scan(k.proc(pid));
  ASSERT_EQ(handlers.size(), 1u);
  EXPECT_EQ(handlers[0].verdict, analysis::FilterVerdict::kRejectsAv);
}

}  // namespace
}  // namespace crp::targets
