#include <gtest/gtest.h>

#include "analysis/seh_analysis.h"
#include "defense/rate_detector.h"
#include "oracle/oracle.h"
#include "targets/browser.h"
#include "targets/common.h"
#include "targets/dll_corpus.h"

namespace crp::defense {
namespace {

using isa::Assembler;
using isa::Cond;
using isa::Reg;

TEST(RateDetector, SilentOnBenignBrowsing) {
  os::Kernel k;
  targets::BrowserSim b(k, {targets::BrowserSim::Kind::kIE, 3, 0});
  RateDetector det(k, b.proc());
  for (u64 s = 0; s < 25; ++s) b.visit_page(s);
  b.pump(120'000'000);
  // §VII baseline: normal browsing exhibits (near) zero access violations.
  EXPECT_EQ(det.total_avs(), 0u);
  EXPECT_FALSE(det.alarmed());
}

TEST(RateDetector, AlarmsUnderScanningAttack) {
  os::Kernel k;
  targets::BrowserSim b(k, {targets::BrowserSim::Kind::kIE, 4, 0});
  RateDetector::Config cfg;
  cfg.threshold = 50;
  RateDetector det(k, b.proc(), cfg);
  oracle::SehProbeOracle probe(b);
  // Scanning attack: most probes hit unmapped memory -> handled AVs pile up
  // at ~1 probe per virtual millisecond.
  for (int i = 0; i < 150; ++i)
    probe.probe(0x7000bad0000 + static_cast<u64>(i) * 4096);
  EXPECT_GE(det.handled_avs(), 150u);
  EXPECT_TRUE(det.alarmed());
  EXPECT_GT(det.peak_rate_per_sec(), 100.0);  // orders of magnitude over benign
}

TEST(RateDetector, AsmJsStyleBurstsStayUnderThreshold) {
  // asm.js-like workload: intentional AV bursts (bounds checks via faults),
  // groups of <= 20 with gaps — must NOT alarm at the paper's threshold.
  Assembler a("asmjs");
  a.label("e");
  a.movi(Reg::R9, 12);  // burst size
  a.label("burst");
  a.movi(Reg::R2, 0x400000);
  a.label("tb");
  a.load(Reg::R1, Reg::R2, 8);
  a.label("te");
  a.nop();
  a.label("h");
  a.subi(Reg::R9, 1);
  a.cmpi(Reg::R9, 0);
  a.jcc(Cond::kNe, "burst");
  // Gap: sleep well past the detector window, then one more burst.
  a.movi(Reg::R1, 3000);  // 3 virtual seconds
  a.apicall(os::kApiSleep);
  a.lea_pc(Reg::R3, "rounds");
  a.load(Reg::R4, Reg::R3, 8);
  a.subi(Reg::R4, 1);
  a.store(Reg::R3, 0, Reg::R4, 8);
  a.cmpi(Reg::R4, 0);
  a.jcc(Cond::kEq, "done");
  a.movi(Reg::R9, 12);
  a.jmp("burst");
  a.label("done");
  a.halt();
  a.set_entry("e");
  a.scope("tb", "te", "", "h");
  a.data_u64("rounds", 3);

  os::Kernel k;
  int pid = k.create_process("asmjs", vm::Personality::kWindows, 5);
  k.proc(pid).load(std::make_shared<isa::Image>(a.build()));
  k.start_process(pid);
  RateDetector::Config cfg;
  cfg.threshold = 50;
  RateDetector det(k, k.proc(pid), cfg);
  k.run(50'000'000);
  EXPECT_FALSE(k.proc(pid).alive());  // ran to completion
  EXPECT_FALSE(k.proc(pid).exit_info().crashed);
  EXPECT_EQ(det.handled_avs(), 36u);  // 3 bursts x 12
  EXPECT_LE(det.peak_window_count(), 20u);
  EXPECT_FALSE(det.alarmed());
}

TEST(MappedOnlyPolicy, KillsTheIeOracleOnUnmappedProbes) {
  os::Kernel k;
  targets::BrowserSim b(k, {targets::BrowserSim::Kind::kIE, 6, 0});
  b.proc().machine().set_mapped_only_av_policy(true);
  oracle::SehProbeOracle probe(b);
  probe.probe(0x7777bad0000);  // unmapped probe under the §VII policy
  EXPECT_FALSE(k.proc(b.pid()).alive());
  EXPECT_TRUE(k.proc(b.pid()).exit_info().crashed);
}

TEST(MappedOnlyPolicy, StillAllowsLegitimateGuardPageTricks) {
  os::Kernel k;
  targets::BrowserSim b(k, {targets::BrowserSim::Kind::kIE, 6, 0});
  b.proc().machine().set_mapped_only_av_policy(true);
  // A Firefox-style optimization faults on a *mapped* no-access page: the
  // policy must still let the handler run (§VII "Restricting access
  // violations").
  gva_t trap = b.proc().heap_alloc(4096, mem::kPermNone);
  oracle::SehProbeOracle probe(b);
  EXPECT_EQ(probe.probe(trap + 8), oracle::ProbeResult::kUnmapped);  // handler ran
  EXPECT_TRUE(k.proc(b.pid()).alive());
}

TEST(AuditBroadFilters, FlagsCatchAllOverLargeRegions) {
  Assembler a("lib");
  a.set_dll(true);
  a.label("fn");
  a.label("big_b");
  for (int i = 0; i < 10; ++i) a.nop();
  a.label("big_e");
  a.label("small_b");
  a.nop();
  a.label("small_e");
  a.ret();
  a.label("h");
  a.ret();
  a.scope("big_b", "big_e", "", "h");      // catch-all over 10 instructions
  a.scope("small_b", "small_e", "", "h");  // catch-all over 1 instruction
  analysis::SehExtractor ex;
  ex.add_image(std::make_shared<isa::Image>(a.build()));
  analysis::FilterClassifier fc;
  auto filters = fc.classify_all(ex);
  auto flagged = audit_broad_filters(ex, filters);
  ASSERT_EQ(flagged.size(), 1u);
  EXPECT_EQ(flagged[0].scope.end - flagged[0].scope.begin, 10 * isa::kInstrBytes);
}

TEST(AuditBroadFilters, IndexedLookupMatchesBruteForceOnCorpus) {
  // The audit used to scan every filter row per handler (O(handlers ×
  // filters)); it now indexes verdicts by module:offset first. Both must
  // flag exactly the same handler sites on a realistic corpus.
  analysis::SehExtractor ex;
  auto specs = targets::paper_dll_specs();
  auto filler = targets::filler_dll_specs(30, 0x5EF);
  specs.insert(specs.end(), filler.begin(), filler.end());
  for (const auto& spec : specs) {
    auto dll = targets::generate_dll(spec, 0x5EF);
    ex.add_image(dll.image);
  }
  analysis::FilterClassifier fc;
  auto filters = fc.classify_all(ex);

  // Reference: the original quadratic scan. One-instruction threshold so the
  // corpus' (mostly short) guarded regions actually produce flagged rows.
  constexpr u64 kMaxBenign = isa::kInstrBytes;
  std::vector<const analysis::HandlerSite*> want;
  for (const auto& h : ex.handlers()) {
    bool broad = h.catch_all;
    if (!broad) {
      for (const auto& f : filters)
        if (f.module == h.module && f.offset == h.scope.filter &&
            f.verdict == analysis::FilterVerdict::kAcceptsAv)
          broad = true;
    }
    if (broad && h.scope.end - h.scope.begin > kMaxBenign) want.push_back(&h);
  }

  auto got = audit_broad_filters(ex, filters, kMaxBenign);
  ASSERT_FALSE(got.empty());  // the corpus plants broad guards by design
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].module, want[i]->module) << i;
    EXPECT_EQ(got[i].scope.begin, want[i]->scope.begin) << i;
    EXPECT_EQ(got[i].scope.filter, want[i]->scope.filter) << i;
  }
}

TEST(RateDetector, ResetClearsState) {
  os::Kernel k;
  targets::BrowserSim b(k, {targets::BrowserSim::Kind::kIE, 8, 0});
  RateDetector::Config cfg;
  cfg.threshold = 2;
  RateDetector det(k, b.proc(), cfg);
  oracle::SehProbeOracle probe(b);
  probe.probe(0x7000bad0000);
  probe.probe(0x7000bad1000);
  EXPECT_TRUE(det.alarmed());
  det.reset();
  EXPECT_FALSE(det.alarmed());
  EXPECT_EQ(det.total_avs(), 0u);
}

}  // namespace
}  // namespace crp::defense
