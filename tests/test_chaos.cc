// crp::chaos tests — the fault-injection engine and property layer.
//
// Covers the ISSUE satellites: plan parsing + determinism at any job count,
// every injection point firing (engine-level and through its real
// subsystem), replay-from-seed-line reproduction, shrinker convergence on a
// planted bug, and the acceptance scenario: a planted vm-av seed whose
// crash is caught by the ledger audit and shrunk to a tiny replay line.

#include <gtest/gtest.h>

#include <filesystem>
#include <numeric>

#include "chaos/chaos.h"
#include "chaos/prop.h"
#include "exec/thread_pool.h"
#include "isa/assembler.h"
#include "obs/ledger.h"
#include "obs/obs.h"
#include "oracle/oracle.h"
#include "os/kernel.h"
#include "pipeline/artifact_store.h"
#include "targets/common.h"
#include "targets/nginx.h"

namespace crp::chaos {
namespace {

using isa::Assembler;
using isa::Cond;
using isa::Reg;

void emit_syscall(Assembler& a, os::Sys nr) {
  a.movi(Reg::R0, static_cast<i64>(nr));
  a.syscall();
}

struct LinuxWorld {
  os::Kernel k;
  int pid;

  explicit LinuxWorld(isa::Image img, u64 seed = 11) : pid(0) {
    pid = k.create_process(img.name, vm::Personality::kLinux, seed);
    k.proc(pid).load(std::make_shared<isa::Image>(std::move(img)));
    k.start_process(pid);
  }
  os::Process& p() { return k.proc(pid); }
};

std::string fresh_dir(const char* tag) {
  std::string dir = ::testing::TempDir() + "crp_chaos_" + tag;
  std::filesystem::remove_all(dir);
  return dir;
}

size_t disk_artifacts(const std::string& dir) {
  size_t n = 0;
  std::error_code ec;
  for (auto it = std::filesystem::directory_iterator(dir, ec);
       !ec && it != std::filesystem::directory_iterator(); ++it)
    if (it->path().extension() == ".artifact") ++n;
  return n;
}

// --- plan parsing -------------------------------------------------------------

TEST(Plan, ParseDefaultsAndGroups) {
  FaultPlan p;
  ASSERT_TRUE(parse_plan("42", &p));
  EXPECT_EQ(p.seed, 42u);
  EXPECT_EQ(p.points, kIoPoints);
  EXPECT_FALSE(p.replay);

  ASSERT_TRUE(parse_plan("0x2a:all", &p));
  EXPECT_EQ(p.seed, 42u);
  EXPECT_EQ(p.points, kAllPoints);

  ASSERT_TRUE(parse_plan("7:rate=8,vm", &p));
  EXPECT_EQ(p.rate, 8u);
  EXPECT_EQ(p.points, kVmPoints);

  ASSERT_TRUE(parse_plan("5:sys-eintr,cache-corrupt", &p));
  EXPECT_EQ(p.points, point_bit(Point::kSysEintr) | point_bit(Point::kCacheCorrupt));
}

TEST(Plan, ParseReplayEvents) {
  FaultPlan p;
  ASSERT_TRUE(parse_plan("9:sys-eintr@1f.3,vm-av@2.0", &p));
  EXPECT_TRUE(p.replay);
  ASSERT_EQ(p.events.size(), 2u);
  // Events come back sorted by (salt, index, point).
  EXPECT_EQ(p.events[0], (FaultEvent{0x2, 0, Point::kVmAv}));
  EXPECT_EQ(p.events[1], (FaultEvent{0x1f, 3, Point::kSysEintr}));
  EXPECT_EQ(p.points, point_bit(Point::kSysEintr) | point_bit(Point::kVmAv));
}

TEST(Plan, StrRoundTrips) {
  for (const char* spec : {"42", "7:rate=8,vm", "5:sys-eintr,cache-corrupt",
                           "9:vm-av@2.0,sys-eintr@1f.3", "1:all"}) {
    FaultPlan p, q;
    ASSERT_TRUE(parse_plan(spec, &p)) << spec;
    ASSERT_TRUE(parse_plan(p.str(), &q)) << spec << " -> " << p.str();
    EXPECT_EQ(p.seed, q.seed) << spec;
    EXPECT_EQ(p.rate, q.rate) << spec;
    EXPECT_EQ(p.points, q.points) << spec;
    EXPECT_EQ(p.replay, q.replay) << spec;
    EXPECT_EQ(p.events, q.events) << spec;
  }
}

TEST(Plan, ParseRejectsGarbage) {
  FaultPlan p;
  std::string err;
  EXPECT_FALSE(parse_plan("", &p, &err));
  EXPECT_FALSE(parse_plan("nope", &p, &err));
  EXPECT_FALSE(parse_plan("5:bogus-point", &p, &err));
  EXPECT_NE(err.find("bogus-point"), std::string::npos);
  EXPECT_FALSE(parse_plan("5:rate=0", &p, &err));
  EXPECT_FALSE(parse_plan("5:sys-eintr@zz.q", &p, &err));
  EXPECT_FALSE(parse_plan("5:io@1.2", &p, &err));  // group in a replay event
}

// --- determinism at any job count ---------------------------------------------

TEST(Plan, DeterminismAcrossJobCounts) {
  // Same plan, same work, jobs=1 vs jobs=4: identical merged outputs AND an
  // identical fired-event trace. Salts follow the task index, never the
  // thread, so this holds even with task-order perturbation enabled.
  FaultPlan plan;
  plan.seed = 42;
  plan.rate = 3;
  plan.points = kIoPoints | point_bit(Point::kTaskOrder);
  install(&plan);

  auto run = [](int jobs) {
    TaskScope reset(7);  // pin the caller's salt context per run
    clear_injected_events();
    exec::ThreadPool pool(jobs);
    std::vector<int> items(16);
    auto out = exec::parallel_map(pool, items, [](size_t, const int&) {
      FaultStream s = make_stream(kIoPoints);
      u64 acc = 0;
      for (int j = 0; j < 32; ++j)
        if (s.fire(Point::kSysEintr)) acc |= 1ull << j;
      return acc ^ s.draw(Point::kShortRead);
    });
    return std::pair{out, injected_events()};
  };

  auto [out1, ev1] = run(1);
  auto [out4, ev4] = run(4);
  install(nullptr);
  clear_injected_events();

  EXPECT_FALSE(ev1.empty());
  EXPECT_EQ(out1, out4);
  EXPECT_EQ(ev1, ev4);
}

// --- every point fires and is counted -----------------------------------------

TEST(Stream, EachPointFiresAndCounts) {
  for (u32 i = 0; i < kNumPoints; ++i) {
    Point p = static_cast<Point>(i);
    std::string counter = std::string("chaos.injected.") + point_name(p);
    std::replace(counter.begin(), counter.end(), '-', '_');
    u64 before = obs::Registry::global().counter(counter).value();

    FaultPlan plan;
    plan.seed = 1;
    plan.rate = 1;  // every site visit fires
    plan.points = point_bit(p);
    ScopedPlan scope(plan);
    FaultStream s = make_stream(point_bit(p));
    ASSERT_TRUE(s.armed()) << point_name(p);
    EXPECT_TRUE(i % 2 == 0 ? s.fire(p) : s.fire_keyed(p, 0xfeedu + i)) << point_name(p);
    // A point outside the plan never fires, even at rate 1.
    Point other = static_cast<Point>((i + 1) % kNumPoints);
    EXPECT_FALSE(s.fire(other)) << point_name(p);

    auto evs = scope.events();
    ASSERT_EQ(evs.size(), 1u) << point_name(p);
    EXPECT_EQ(evs[0].point, p);
    EXPECT_EQ(obs::Registry::global().counter(counter).value(), before + 1) << point_name(p);
  }
}

TEST(Stream, UnarmedStreamIsInert) {
  FaultStream s;  // no plan anywhere
  EXPECT_FALSE(s.armed());
  EXPECT_FALSE(s.fire(Point::kSysEintr));
  EXPECT_FALSE(s.fire_keyed(Point::kCacheCorrupt, 123));
}

// --- per-subsystem integration ------------------------------------------------

// os::Kernel: an injected -EINTR is retried by a well-behaved guest and the
// retry observes the same file bytes — the syscall converges to the same
// result it would have had without the fault.
TEST(Inject, KernelReadEintrRetriesToSameResult) {
  Assembler a("t");
  a.label("e");
  a.lea_pc(Reg::R1, "path");
  a.movi(Reg::R2, 0);
  emit_syscall(a, os::Sys::kOpen);
  a.mov(Reg::R5, Reg::R0);
  a.label("retry");
  a.mov(Reg::R1, Reg::R5);
  a.lea_pc(Reg::R2, "buf");
  a.movi(Reg::R3, 64);
  emit_syscall(a, os::Sys::kRead);
  a.cmpi(Reg::R0, -os::kEINTR);
  a.jcc(Cond::kEq, "retry");
  a.mov(Reg::R1, Reg::R0);
  emit_syscall(a, os::Sys::kExitGroup);
  a.set_entry("e");
  a.data_cstr("path", "/www/index.html");
  a.data_zero("buf", 64);

  FaultPlan plan;
  plan.seed = 3;
  plan.rate = 2;
  plan.points = point_bit(Point::kSysEintr);
  ScopedPlan scope(plan);
  LinuxWorld w(a.build());
  w.k.vfs().put_file("/www/index.html", "<html>hi</html>");
  w.k.run(300000);

  ASSERT_FALSE(w.p().alive());
  EXPECT_FALSE(w.p().exit_info().crashed);
  EXPECT_EQ(w.p().exit_info().code, 15);  // full payload despite retries
  auto evs = scope.events();
  ASSERT_FALSE(evs.empty());  // the fault actually fired at seed 3
  for (const FaultEvent& ev : evs) EXPECT_EQ(ev.point, Point::kSysEintr);
}

// vm::Machine: an injected access violation in a handler-less guest is an
// unhandled exception — the planted process death the audit must catch.
TEST(Inject, VmAvKillsHandlerlessGuest) {
  Assembler a("t");
  a.label("e");
  a.label("spin");
  a.jmp("spin");
  a.set_entry("e");

  FaultPlan plan;
  plan.seed = 1;
  plan.rate = 1;
  plan.points = point_bit(Point::kVmAv);
  ScopedPlan scope(plan);
  LinuxWorld w(a.build());
  w.k.run(5000);

  ASSERT_FALSE(w.p().alive());
  EXPECT_TRUE(w.p().exit_info().crashed);
  EXPECT_EQ(w.p().machine().exception_stats().unhandled, 1u);
  auto evs = scope.events();
  ASSERT_EQ(evs.size(), 1u);
  EXPECT_EQ(evs[0].point, Point::kVmAv);
}

TEST(Inject, VmSingleStepKillsHandlerlessGuest) {
  Assembler a("t");
  a.label("e");
  a.label("spin");
  a.jmp("spin");
  a.set_entry("e");

  FaultPlan plan;
  plan.seed = 1;
  plan.rate = 1;
  plan.points = point_bit(Point::kVmSingleStep);
  ScopedPlan scope(plan);
  LinuxWorld w(a.build());
  w.k.run(5000);

  ASSERT_FALSE(w.p().alive());
  EXPECT_TRUE(w.p().exit_info().crashed);
  auto evs = scope.events();
  ASSERT_EQ(evs.size(), 1u);
  EXPECT_EQ(evs[0].point, Point::kVmSingleStep);
}

// pipeline::ArtifactStore: a failed publish rename leaves no disk artifact;
// the in-memory tier still serves the value.
TEST(Inject, CacheRenameFailKeepsMemoryOnly) {
  std::string dir = fresh_dir("rename");
  FaultPlan plan;
  plan.seed = 1;
  plan.rate = 1;
  plan.points = point_bit(Point::kCacheRenameFail);
  ScopedPlan scope(plan);

  pipeline::ArtifactStore store;
  store.set_enabled(true);
  store.set_dir(dir);
  pipeline::ArtifactKey key{"stage", 0x11, 0x22};
  store.store(key, "payload");

  std::string got;
  EXPECT_TRUE(store.lookup(key, &got));  // memory tier unaffected
  EXPECT_EQ(got, "payload");
  EXPECT_EQ(disk_artifacts(dir), 0u);  // the rename "failed"
  auto evs = scope.events();
  ASSERT_EQ(evs.size(), 1u);
  EXPECT_EQ(evs[0].point, Point::kCacheRenameFail);
  std::filesystem::remove_all(dir);
}

// pipeline::ArtifactStore: a corrupted disk blob is detected by the
// checksum header, counted, removed, and treated as a miss — never decoded.
TEST(Inject, CacheCorruptionDetectedAndRecomputed) {
  for (Point p : {Point::kCacheCorrupt, Point::kCacheTruncate}) {
    std::string dir = fresh_dir(point_name(p));
    pipeline::ArtifactKey key{"stage", 0x11, 0x22};
    {
      // Cold write with no chaos: a valid artifact lands on disk.
      pipeline::ArtifactStore writer;
      writer.set_enabled(true);
      writer.set_dir(dir);
      writer.store(key, "payload");
      ASSERT_EQ(disk_artifacts(dir), 1u) << point_name(p);
    }
    u64 corrupt_before = obs::Registry::global().counter("pipeline.cache.corrupt").value();
    FaultPlan plan;
    plan.seed = 1;
    plan.rate = 1;
    plan.points = point_bit(p);
    ScopedPlan scope(plan);

    pipeline::ArtifactStore reader;  // fresh process: memory tier is cold
    reader.set_enabled(true);
    reader.set_dir(dir);
    std::string got;
    EXPECT_FALSE(reader.lookup(key, &got)) << point_name(p);  // detect, don't decode
    EXPECT_EQ(reader.corrupt(), 1u) << point_name(p);
    EXPECT_EQ(obs::Registry::global().counter("pipeline.cache.corrupt").value(),
              corrupt_before + 1)
        << point_name(p);
    EXPECT_EQ(disk_artifacts(dir), 0u) << point_name(p);  // bad blob dropped
    // Detect-and-recompute: the caller stores the recomputed value and the
    // memory tier serves it even while the disk keeps failing.
    reader.store(key, "payload");
    EXPECT_TRUE(reader.lookup(key, &got)) << point_name(p);
    EXPECT_EQ(got, "payload") << point_name(p);
    std::filesystem::remove_all(dir);
  }
}

// exec::ThreadPool: task-order perturbation shuffles execution order but the
// merged output is byte-identical — the determinism contract under chaos.
TEST(Inject, TaskOrderPerturbsExecutionNotOutput) {
  FaultPlan plan;
  plan.seed = 5;
  plan.rate = 1;
  plan.points = point_bit(Point::kTaskOrder);
  ScopedPlan scope(plan);

  std::vector<u64> executed;  // jobs=1: everything runs on this thread
  exec::ThreadPool pool(1);
  std::vector<int> items(8);
  auto out = exec::parallel_map(pool, items, [&](size_t i, const int&) {
    executed.push_back(i);
    return static_cast<u64>(i) * 10;
  });

  ASSERT_EQ(out.size(), 8u);
  for (size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * 10);  // input order
  std::vector<u64> identity(8);
  std::iota(identity.begin(), identity.end(), 0);
  EXPECT_NE(executed, identity);  // ...but execution really was perturbed
  auto evs = scope.events();
  ASSERT_EQ(evs.size(), 1u);
  EXPECT_EQ(evs[0].point, Point::kTaskOrder);
}

// --- replay -------------------------------------------------------------------

TEST(Replay, FromSeedLineReproducesExactTrace) {
  auto drive = [](const FaultPlan& p) {
    ScopedPlan scope(p);
    FaultStream a = make_stream(kIoPoints);
    FaultStream b = make_stream(kCachePoints);
    std::string pat;
    for (int i = 0; i < 40; ++i) {
      pat += a.fire(Point::kSysEintr) ? 'I' : '.';
      pat += a.fire(Point::kShortRead) ? 'R' : '.';
      pat += b.fire_keyed(Point::kCacheCorrupt, 0xabcu + static_cast<u64>(i)) ? 'C' : '.';
    }
    return std::pair{pat, scope.events()};
  };

  FaultPlan rnd;
  rnd.seed = 123;
  rnd.rate = 5;
  rnd.points = kIoPoints | kCachePoints;
  auto [pat1, ev1] = drive(rnd);
  ASSERT_FALSE(ev1.empty());

  std::string line = format_replay(rnd.seed, ev1);
  FaultPlan replay;
  ASSERT_TRUE(parse_plan(line, &replay)) << line;
  EXPECT_TRUE(replay.replay);

  auto [pat2, ev2] = drive(replay);
  EXPECT_EQ(pat1, pat2);
  EXPECT_EQ(ev1, ev2);
}

// --- shrinking ----------------------------------------------------------------

TEST(Shrink, ConvergesOnPlantedBug) {
  // The planted bug: the body fails iff the injection at stream index 37
  // fires. Every other fired event is noise the shrinker must remove.
  Property body = [](u64) -> std::optional<std::string> {
    FaultStream s = make_stream(point_bit(Point::kSysEintr));
    bool bug = false;
    for (u64 i = 0; i < 100; ++i)
      if (s.fire(Point::kSysEintr) && i == 37) bug = true;
    if (bug) return "planted: injection at index 37 fired";
    return std::nullopt;
  };

  PropOptions opts;
  opts.seeds = 32;
  opts.base_seed = 1;
  opts.rate = 4;
  opts.points = point_bit(Point::kSysEintr);
  PropResult res = check("planted-idx37", opts, body);

  ASSERT_FALSE(res.ok()) << "no seed in the sweep tripped the planted bug";
  ASSERT_EQ(res.cex->events.size(), 1u) << res.summary();
  EXPECT_EQ(res.cex->events[0].index, 37u);
  EXPECT_EQ(res.cex->events[0].point, Point::kSysEintr);
  EXPECT_EQ(res.cex->message.find("[WARNING"), std::string::npos);

  // The emitted CRP_CHAOS line reproduces the failure on its own.
  FaultPlan replay;
  ASSERT_TRUE(parse_plan(res.cex->replay, &replay)) << res.cex->replay;
  EXPECT_TRUE(run_with_plan(replay, body).has_value());
}

// --- acceptance: planted crash caught by the audit and shrunk -----------------

TEST(Acceptance, PlantedVmAvCaughtByAuditAndShrunk) {
  // The full paper loop under vm fault injection: nginx + recv oracle +
  // hunt. A vm-av injected mid-probing kills the server; the Scanner
  // records the alive->dead transition and the ledger audit goes red. The
  // property layer must catch that, shrink it to a <=3-event replay line,
  // and that line must reproduce.
  Property body = [](u64) -> std::optional<std::string> {
    obs::Ledger::global().clear();
    os::Kernel k;
    auto t = targets::make_nginx();
    int pid = t.instantiate(k, 0x90A);
    k.run(3'000'000);
    if (!k.proc(pid).alive()) return std::nullopt;  // died before probing: not our bug
    gva_t hidden = targets::plant_hidden_region(k.proc(pid), 8 * 4096, 1);
    oracle::NginxRecvOracle oracle(k, pid, targets::kNginxPort);
    oracle::Scanner scanner(oracle);
    scanner.hunt(hidden - 64 * 4096, hidden + 64 * 4096, 200, 0x5ca7);
    obs::LedgerAudit audit = obs::audit_ledger(obs::Ledger::global());
    if (!audit.zero_crash())
      return strf("zero-crash invariant violated: %llu crash events",
                  static_cast<unsigned long long>(audit.crash_events));
    return std::nullopt;
  };

  PropOptions opts;
  opts.seeds = 6;
  opts.base_seed = 1;
  opts.rate = 500;  // sparse: survive startup, die somewhere in the hunt
  opts.points = point_bit(Point::kVmAv);
  PropResult res = check("vm-av-audit", opts, body);

  ASSERT_FALSE(res.ok()) << "no seed in the sweep crashed the target mid-hunt";
  EXPECT_LE(res.cex->events.size(), 3u) << res.summary();
  for (const FaultEvent& ev : res.cex->events) EXPECT_EQ(ev.point, Point::kVmAv);
  EXPECT_EQ(res.cex->message.find("[WARNING"), std::string::npos) << res.summary();

  FaultPlan replay;
  ASSERT_TRUE(parse_plan(res.cex->replay, &replay)) << res.cex->replay;
  EXPECT_TRUE(run_with_plan(replay, body).has_value()) << res.cex->replay;

  obs::Ledger::global().clear();  // don't leak the planted crash to other tests
}

}  // namespace
}  // namespace crp::chaos
