#include <gtest/gtest.h>

#include "isa/assembler.h"
#include "isa/image.h"
#include "isa/isa.h"
#include "util/rng.h"

namespace crp::isa {
namespace {

TEST(Encode, RoundTripSimple) {
  Instr in{Op::kAddRI, Reg::R3, Reg::R0, 0, -42};
  auto bytes = encode(in);
  auto back = decode(bytes);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, in);
}

TEST(Decode, RejectsBadOpcode) {
  std::array<u8, kInstrBytes> bytes{};
  bytes[0] = static_cast<u8>(Op::kCount);
  EXPECT_FALSE(decode(bytes).has_value());
  bytes[0] = 0xff;
  EXPECT_FALSE(decode(bytes).has_value());
}

TEST(Decode, RejectsBadRegister) {
  Instr in{Op::kMovRR, Reg::R1, Reg::R2, 0, 0};
  auto bytes = encode(in);
  bytes[1] = 16;
  EXPECT_FALSE(decode(bytes).has_value());
  bytes[1] = 1;
  bytes[2] = 200;
  EXPECT_FALSE(decode(bytes).has_value());
}

TEST(Decode, RejectsBadWidth) {
  Instr in{Op::kLoad, Reg::R1, Reg::R2, 8, 0};
  auto bytes = encode(in);
  bytes[3] = 3;
  EXPECT_FALSE(decode(bytes).has_value());
  bytes[3] = 0;
  EXPECT_FALSE(decode(bytes).has_value());
}

TEST(Decode, RejectsBadCond) {
  Instr in{Op::kJcc, Reg::R0, Reg::R0, static_cast<u8>(Cond::kEq), 16};
  auto bytes = encode(in);
  bytes[3] = static_cast<u8>(Cond::kCount);
  EXPECT_FALSE(decode(bytes).has_value());
}

TEST(Decode, RejectsShortBuffer) {
  std::vector<u8> bytes(8, 0);
  EXPECT_FALSE(decode(bytes).has_value());
}

// Property: every op round-trips through encode/decode for a sweep of
// operand values.
class RoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(RoundTrip, EncodeDecodeIdentity) {
  Op op = static_cast<Op>(GetParam());
  Rng rng(static_cast<u64>(GetParam()) * 77 + 1);
  for (int trial = 0; trial < 50; ++trial) {
    Instr in;
    in.op = op;
    in.ra = static_cast<Reg>(rng.below(16));
    in.rb = static_cast<Reg>(rng.below(16));
    if (op == Op::kLoad || op == Op::kStore) {
      static const u8 widths[] = {1, 2, 4, 8};
      in.w = widths[rng.below(4)];
    } else if (op == Op::kJcc) {
      in.w = static_cast<u8>(rng.below(static_cast<u64>(Cond::kCount)));
    } else {
      in.w = 0;
    }
    in.imm = static_cast<i64>(rng.next());
    auto back = decode(encode(in));
    ASSERT_TRUE(back.has_value()) << op_name(op);
    EXPECT_EQ(*back, in) << op_name(op);
  }
}

INSTANTIATE_TEST_SUITE_P(AllOps, RoundTrip,
                         ::testing::Range(0, static_cast<int>(Op::kCount)));

TEST(Disasm, ReadableOutput) {
  EXPECT_EQ(disasm({Op::kMovRI, Reg::R1, Reg::R0, 0, 5}), "movi r1, 5");
  EXPECT_EQ(disasm({Op::kLoad, Reg::R2, Reg::SP, 8, 16}), "load8 r2, [sp+16]");
  EXPECT_EQ(disasm({Op::kStore, Reg::FP, Reg::R3, 4, -8}), "store4 [fp-8], r3");
  // PC-relative: target = pc + 16 + imm.
  EXPECT_EQ(disasm({Op::kJmp, Reg::R0, Reg::R0, 0, 16}, 0x100), "jmp 0x120");
  EXPECT_EQ(disasm({Op::kJcc, Reg::R0, Reg::R0, static_cast<u8>(Cond::kNe), 0}, 0),
            "jne 0x10");
}

TEST(OpClassification, MemoryAndControlFlow) {
  EXPECT_TRUE(reads_memory(Op::kLoad));
  EXPECT_TRUE(reads_memory(Op::kPop));
  EXPECT_TRUE(writes_memory(Op::kStore));
  EXPECT_TRUE(writes_memory(Op::kPush));
  EXPECT_TRUE(writes_memory(Op::kCall));
  EXPECT_FALSE(writes_memory(Op::kAddRR));
  EXPECT_TRUE(is_control_flow(Op::kRet));
  EXPECT_TRUE(is_control_flow(Op::kJcc));
  EXPECT_FALSE(is_control_flow(Op::kCmpRR));
}

TEST(Image, WriteReadRoundTrip) {
  Assembler a("demo");
  a.label("start");
  a.movi(Reg::R0, 7);
  a.label("guard_begin");
  a.load(Reg::R1, Reg::R2, 8);
  a.label("guard_end");
  a.ret();
  a.label("handler");
  a.movi(Reg::R0, static_cast<i64>(0xdead));
  a.ret();
  a.label("filter");
  a.movi(Reg::R0, 1);
  a.ret();
  a.data_u64("config", 0x1234);
  a.data_cstr("msg", "hello");
  a.set_entry("start");
  a.export_fn("demo_start", "start");
  a.scope("guard_begin", "guard_end", "filter", "handler");
  a.scope("guard_begin", "guard_end", "", "handler");  // catch-all variant
  Image img = a.build();

  auto bytes = write_image(img);
  auto back = read_image(bytes);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->name, "demo");
  EXPECT_EQ(back->entry, img.entry);
  ASSERT_EQ(back->sections.size(), 2u);
  EXPECT_EQ(back->sections[0].bytes, img.sections[0].bytes);
  ASSERT_EQ(back->scopes.size(), 2u);
  EXPECT_EQ(back->scopes[1].filter, kFilterCatchAll);
  EXPECT_NE(back->find_symbol("config"), nullptr);
  ASSERT_NE(back->find_export("demo_start"), nullptr);
  EXPECT_EQ(back->find_export("demo_start")->offset, 0u);
}

TEST(Image, ReadRejectsGarbage) {
  std::vector<u8> junk = {1, 2, 3, 4, 5};
  EXPECT_FALSE(read_image(junk).has_value());
  junk.assign(64, 0);
  EXPECT_FALSE(read_image(junk).has_value());
}

TEST(Image, ReadRejectsTruncated) {
  Assembler a("t");
  a.label("e");
  a.ret();
  a.set_entry("e");
  auto bytes = write_image(a.build());
  for (size_t cut : {bytes.size() - 1, bytes.size() / 2, size_t{5}}) {
    std::vector<u8> trunc(bytes.begin(), bytes.begin() + static_cast<ptrdiff_t>(cut));
    EXPECT_FALSE(read_image(trunc).has_value()) << "cut=" << cut;
  }
}

TEST(Image, ReadRejectsOutOfRangeScope) {
  Assembler a("t");
  a.label("e");
  a.ret();
  a.set_entry("e");
  Image img = a.build();
  img.scopes.push_back({0, 99999, kFilterCatchAll, 0});
  EXPECT_FALSE(read_image(write_image(img)).has_value());
}

TEST(Assembler, PcRelativeDataReference) {
  Assembler a("t");
  a.label("entry");
  a.lea_pc(Reg::R1, "myvar");
  a.ret();
  a.data_u64("myvar", 42);
  a.set_entry("entry");
  Image img = a.build();
  // leapc imm must equal (data_base + var_off) - (0 + 16).
  auto ins = decode(std::span<const u8>(img.sections[0].bytes.data(), 16));
  ASSERT_TRUE(ins.has_value());
  EXPECT_EQ(ins->op, Op::kLeaPc);
  u64 data_base = align_up(img.sections[0].bytes.size(), 4096);
  EXPECT_EQ(ins->imm, static_cast<i64>(data_base) - 16);
}

TEST(Assembler, ForwardAndBackwardBranches) {
  Assembler a("t");
  a.label("top");
  a.jmp("bottom");     // forward
  a.label("mid");
  a.jmp("top");        // backward
  a.label("bottom");
  a.ret();
  a.set_entry("top");
  Image img = a.build();
  auto j0 = decode(std::span<const u8>(img.sections[0].bytes.data(), 16));
  auto j1 = decode(std::span<const u8>(img.sections[0].bytes.data() + 16, 16));
  ASSERT_TRUE(j0 && j1);
  EXPECT_EQ(j0->imm, 16);   // 0+16+16 = 32 = "bottom"
  EXPECT_EQ(j1->imm, -32);  // 16+16-32 = 0 = "top"
}

TEST(Assembler, ImportsDeduplicated) {
  Assembler a("t");
  a.label("e");
  a.call_import("ntdll", "foo");
  a.call_import("ntdll", "foo");
  a.call_import("ntdll", "bar");
  a.ret();
  a.set_entry("e");
  Image img = a.build();
  EXPECT_EQ(img.imports.size(), 2u);
}

TEST(Image, MappedSizePageAligned) {
  Assembler a("t");
  a.label("e");
  a.ret();
  a.set_entry("e");
  a.data_zero("buf", 5000);
  Image img = a.build();
  EXPECT_EQ(img.mapped_size() % 4096, 0u);
  EXPECT_GE(img.mapped_size(), 4096u + 8192u);  // 1 code page + 2 data pages
}

}  // namespace
}  // namespace crp::isa
