#include <gtest/gtest.h>

#include <memory>

#include "chaos/chaos.h"
#include "isa/assembler.h"
#include "os/kernel.h"

namespace crp::os {
namespace {

using isa::Assembler;
using isa::Cond;
using isa::Reg;

/// Emit a syscall: number + up to 6 register args already set by caller.
void emit_syscall(Assembler& a, Sys nr) {
  a.movi(Reg::R0, static_cast<i64>(nr));
  a.syscall();
}

/// Convenience world: one Linux process running `img`.
struct LinuxWorld {
  Kernel k;
  int pid;

  explicit LinuxWorld(isa::Image img, u64 seed = 11) : pid(0) {
    pid = k.create_process(img.name, vm::Personality::kLinux, seed);
    k.proc(pid).load(std::make_shared<isa::Image>(std::move(img)));
    k.start_process(pid);
  }
  Process& p() { return k.proc(pid); }
};

TEST(Vfs, BasicOperations) {
  Vfs v;
  v.put_file("/etc/conf", "hello");
  EXPECT_TRUE(v.exists("/etc/conf"));
  EXPECT_TRUE(v.exists("/etc"));
  EXPECT_EQ(v.mkdir("/tmp", 0755), 0);
  EXPECT_EQ(v.mkdir("/tmp", 0755), -kEEXIST);
  EXPECT_EQ(v.mkdir("/no/parent/here", 0755), -kENOENT);
  EXPECT_EQ(v.chmod("/etc/conf", 0600), 0);
  EXPECT_EQ(v.resolve("/etc/conf")->mode, 0600u);
  EXPECT_EQ(v.chmod("/nope", 0600), -kENOENT);
  EXPECT_EQ(v.symlink("/etc/conf", "/tmp/link"), 0);
  ASSERT_NE(v.resolve("/tmp/link"), nullptr);
  EXPECT_EQ(v.resolve("/tmp/link")->data.size(), 5u);
  EXPECT_EQ(v.unlink("/tmp/link"), 0);
  EXPECT_EQ(v.unlink("/tmp"), -kEISDIR);
  EXPECT_EQ(v.unlink("/gone"), -kENOENT);
}

TEST(Vfs, NormalizePaths) {
  EXPECT_EQ(Vfs::normalize("//a///b/"), "/a/b");
  EXPECT_EQ(Vfs::normalize("a/b"), "/a/b");
  EXPECT_EQ(Vfs::normalize("/"), "/");
  EXPECT_EQ(Vfs::normalize("/a/./b"), "/a/b");
  EXPECT_EQ(Vfs::parent_of("/a/b"), "/a");
  EXPECT_EQ(Vfs::parent_of("/a"), "/");
}

TEST(Vfs, SymlinkLoopResolvesToNull) {
  Vfs v;
  ASSERT_EQ(v.symlink("/b", "/a"), 0);
  ASSERT_EQ(v.symlink("/a", "/b"), 0);
  EXPECT_EQ(v.resolve("/a"), nullptr);
}

TEST(Net, ConnectAcceptAndStreams) {
  Network n;
  EXPECT_FALSE(n.connect(80, 1).has_value());
  n.listen(80);
  auto cid = n.connect(80, 5);
  ASSERT_TRUE(cid.has_value());
  EXPECT_EQ(n.backlog(80), 1u);
  auto acc = n.accept(80);
  ASSERT_TRUE(acc.has_value());
  EXPECT_EQ(*acc, *cid);
  EXPECT_EQ(n.backlog(80), 0u);

  Connection* c = n.conn(*cid);
  ASSERT_NE(c, nullptr);
  u8 data[] = {'h', 'i'};
  c->to_server.push(data, c->color);
  std::vector<u8> out;
  std::vector<u32> colors;
  EXPECT_EQ(c->to_server.pop(10, &out, &colors), 2u);
  EXPECT_EQ(out[0], 'h');
  EXPECT_EQ(colors[0], 5u);
}

TEST(Net, CloseBothSidesReaps) {
  Network n;
  n.listen(80);
  u64 id = *n.connect(80, 1);
  n.close_side(id, 0);
  EXPECT_NE(n.conn(id), nullptr);
  n.close_side(id, 1);
  EXPECT_EQ(n.conn(id), nullptr);
}

TEST(FdTableT, AllocLowestFree) {
  FdTable t;
  EXPECT_EQ(t.alloc(FdFile{}), 3);
  EXPECT_EQ(t.alloc(FdFile{}), 4);
  EXPECT_TRUE(t.close(3));
  EXPECT_EQ(t.alloc(FdFile{}), 3);
  EXPECT_FALSE(t.close(99));
}

TEST(Syscalls, ExitGroupTerminatesProcess) {
  Assembler a("t");
  a.label("e");
  a.movi(Reg::R1, 42);
  emit_syscall(a, Sys::kExitGroup);
  a.set_entry("e");
  LinuxWorld w(a.build());
  w.k.run(100000);
  EXPECT_FALSE(w.p().alive());
  EXPECT_EQ(w.p().exit_info().code, 42);
  EXPECT_FALSE(w.p().exit_info().crashed);
}

TEST(Syscalls, WriteToConsole) {
  Assembler a("t");
  a.label("e");
  a.movi(Reg::R1, 1);  // stdout
  a.lea_pc(Reg::R2, "msg");
  a.movi(Reg::R3, 5);
  emit_syscall(a, Sys::kWrite);
  a.movi(Reg::R1, 0);
  emit_syscall(a, Sys::kExitGroup);
  a.set_entry("e");
  a.data_bytes("msg", std::vector<u8>{'h', 'e', 'l', 'l', 'o'});
  LinuxWorld w(a.build());
  w.k.run(100000);
  EXPECT_EQ(w.p().console(), "hello");
}

TEST(Syscalls, WriteWithBadPointerReturnsEfaultNotCrash) {
  Assembler a("t");
  a.label("e");
  a.movi(Reg::R1, 1);
  a.movi(Reg::R2, 0x400000);  // invalid buffer
  a.movi(Reg::R3, 5);
  emit_syscall(a, Sys::kWrite);
  a.mov(Reg::R1, Reg::R0);  // exit code = syscall result
  emit_syscall(a, Sys::kExitGroup);
  a.set_entry("e");
  LinuxWorld w(a.build());
  w.k.run(100000);
  ASSERT_FALSE(w.p().alive());
  EXPECT_FALSE(w.p().exit_info().crashed);  // the crash-resistance property
  EXPECT_EQ(w.p().exit_info().code, -kEFAULT);
}

// Every EFAULT-capable path syscall gracefully reports EFAULT for a wild
// pointer — parameterized over the syscall set (paper Table I rows).
struct EfaultCase {
  Sys nr;
  int ptr_arg;  // which argument (1-based) carries the pointer
};

class EfaultSweep : public ::testing::TestWithParam<EfaultCase> {};

TEST_P(EfaultSweep, GracefulEfault) {
  EfaultCase c = GetParam();
  Assembler a("t");
  a.label("e");
  // Plausible non-pointer argument defaults.
  a.movi(Reg::R1, 1);
  a.movi(Reg::R2, 16);
  a.movi(Reg::R3, 16);
  a.movi(Reg::R4, 0);
  // Overwrite the pointer argument with a wild address.
  a.movi(static_cast<Reg>(c.ptr_arg), 0x13370000);
  emit_syscall(a, c.nr);
  a.mov(Reg::R1, Reg::R0);
  emit_syscall(a, Sys::kExitGroup);
  a.set_entry("e");
  LinuxWorld w(a.build());
  w.k.run(200000);
  ASSERT_FALSE(w.p().alive());
  EXPECT_FALSE(w.p().exit_info().crashed) << sys_name(c.nr);
  EXPECT_EQ(w.p().exit_info().code, -kEFAULT) << sys_name(c.nr);
}

INSTANTIATE_TEST_SUITE_P(
    PathSyscalls, EfaultSweep,
    ::testing::Values(EfaultCase{Sys::kOpen, 1}, EfaultCase{Sys::kChmod, 1},
                      EfaultCase{Sys::kMkdir, 1}, EfaultCase{Sys::kUnlink, 1},
                      EfaultCase{Sys::kSymlink, 1}, EfaultCase{Sys::kSymlink, 2},
                      EfaultCase{Sys::kNanosleep, 1}, EfaultCase{Sys::kSigaction, 2}),
    [](const auto& info) {
      return std::string(sys_name(info.param.nr)) + "_arg" +
             std::to_string(info.param.ptr_arg);
    });

TEST(Syscalls, OpenReadFile) {
  Assembler a("t");
  a.label("e");
  a.lea_pc(Reg::R1, "path");
  a.movi(Reg::R2, 0);  // O_RDONLY
  emit_syscall(a, Sys::kOpen);
  a.mov(Reg::R5, Reg::R0);  // fd
  a.mov(Reg::R1, Reg::R5);
  a.lea_pc(Reg::R2, "buf");
  a.movi(Reg::R3, 64);
  emit_syscall(a, Sys::kRead);
  a.mov(Reg::R1, Reg::R0);  // bytes read
  emit_syscall(a, Sys::kExitGroup);
  a.set_entry("e");
  a.data_cstr("path", "/www/index.html");
  a.data_zero("buf", 64);
  LinuxWorld w(a.build());
  w.k.vfs().put_file("/www/index.html", "<html>hi</html>");
  w.k.run(200000);
  EXPECT_EQ(w.p().exit_info().code, 15);
  gva_t buf = w.p().machine().modules()[0].symbol_addr("buf");
  u64 first8 = 0;
  ASSERT_TRUE(w.p().machine().mem().peek_u64(buf, &first8));
  EXPECT_EQ(first8 & 0xff, u64{'<'});
}

TEST(Syscalls, ReadFromClientBlocksUntilData) {
  // Server: listen, accept, read, echo back the byte count, exit.
  Assembler a("srv");
  a.label("e");
  emit_syscall(a, Sys::kSocket);
  a.mov(Reg::R5, Reg::R0);
  a.mov(Reg::R1, Reg::R5);
  a.movi(Reg::R2, 8080);
  emit_syscall(a, Sys::kBind);
  a.mov(Reg::R1, Reg::R5);
  emit_syscall(a, Sys::kListen);
  a.mov(Reg::R1, Reg::R5);
  a.movi(Reg::R2, 0);
  emit_syscall(a, Sys::kAccept);
  a.mov(Reg::R6, Reg::R0);  // conn fd
  a.mov(Reg::R1, Reg::R6);
  a.lea_pc(Reg::R2, "buf");
  a.movi(Reg::R3, 128);
  emit_syscall(a, Sys::kRead);
  a.mov(Reg::R1, Reg::R0);
  emit_syscall(a, Sys::kExitGroup);
  a.set_entry("e");
  a.data_zero("buf", 128);
  LinuxWorld w(a.build());
  // Run: server blocks in accept.
  w.k.run(50000);
  EXPECT_TRUE(w.p().alive());
  auto client = w.k.connect(8080);
  ASSERT_TRUE(client.has_value());
  w.k.run(50000);  // accept completes; read blocks
  EXPECT_TRUE(w.p().alive());
  client->send("ping!");
  w.k.run(50000);
  ASSERT_FALSE(w.p().alive());
  EXPECT_EQ(w.p().exit_info().code, 5);
}

TEST(Syscalls, EpollWaitEfaultOnBadBuffer) {
  Assembler a("t");
  a.label("e");
  emit_syscall(a, Sys::kEpollCreate);
  a.mov(Reg::R5, Reg::R0);
  a.mov(Reg::R1, Reg::R5);
  a.movi(Reg::R2, 0x400000);  // invalid events buffer
  a.movi(Reg::R3, 8);
  a.movi(Reg::R4, 1000);
  emit_syscall(a, Sys::kEpollWait);
  a.mov(Reg::R1, Reg::R0);
  emit_syscall(a, Sys::kExitGroup);
  a.set_entry("e");
  LinuxWorld w(a.build());
  w.k.run(100000);
  ASSERT_FALSE(w.p().alive());
  EXPECT_FALSE(w.p().exit_info().crashed);
  EXPECT_EQ(w.p().exit_info().code, -kEFAULT);
}

TEST(Syscalls, EpollEndToEnd) {
  // epoll watches a listener; a client connect wakes the wait; accept+read.
  Assembler a("srv");
  a.label("e");
  emit_syscall(a, Sys::kSocket);
  a.mov(Reg::R5, Reg::R0);  // listener fd
  a.mov(Reg::R1, Reg::R5);
  a.movi(Reg::R2, 9090);
  emit_syscall(a, Sys::kBind);
  a.mov(Reg::R1, Reg::R5);
  emit_syscall(a, Sys::kListen);
  emit_syscall(a, Sys::kEpollCreate);
  a.mov(Reg::R6, Reg::R0);  // epfd
  // epoll_ctl(epfd, ADD, listener, &ev{IN, data=listener})
  a.lea_pc(Reg::R7, "ev");
  a.movi(Reg::R8, 1);  // EPOLLIN
  a.store(Reg::R7, 0, Reg::R8, 8);
  a.store(Reg::R7, 8, Reg::R5, 8);
  a.mov(Reg::R1, Reg::R6);
  a.movi(Reg::R2, 1);  // ADD
  a.mov(Reg::R3, Reg::R5);
  a.mov(Reg::R4, Reg::R7);
  emit_syscall(a, Sys::kEpollCtl);
  // epoll_wait(epfd, events, 4, -1)
  a.mov(Reg::R1, Reg::R6);
  a.lea_pc(Reg::R2, "events");
  a.movi(Reg::R3, 4);
  a.movi(Reg::R4, -1);
  emit_syscall(a, Sys::kEpollWait);
  a.mov(Reg::R1, Reg::R0);
  emit_syscall(a, Sys::kExitGroup);
  a.set_entry("e");
  a.data_zero("ev", 16);
  a.data_zero("events", 64);
  LinuxWorld w(a.build());
  w.k.run(50000);
  EXPECT_TRUE(w.p().alive());  // parked in epoll_wait
  auto client = w.k.connect(9090);
  ASSERT_TRUE(client.has_value());
  w.k.run(50000);
  ASSERT_FALSE(w.p().alive());
  EXPECT_EQ(w.p().exit_info().code, 1);  // one ready event
}

TEST(Syscalls, EpollWaitTimesOut) {
  Assembler a("t");
  a.label("e");
  emit_syscall(a, Sys::kEpollCreate);
  a.mov(Reg::R5, Reg::R0);
  a.mov(Reg::R1, Reg::R5);
  a.lea_pc(Reg::R2, "events");
  a.movi(Reg::R3, 4);
  a.movi(Reg::R4, 5);  // 5 ms
  emit_syscall(a, Sys::kEpollWait);
  a.mov(Reg::R1, Reg::R0);
  emit_syscall(a, Sys::kExitGroup);
  a.set_entry("e");
  a.data_zero("events", 64);
  LinuxWorld w(a.build());
  w.k.run(10'000'000);
  ASSERT_FALSE(w.p().alive());
  EXPECT_EQ(w.p().exit_info().code, 0);  // timeout, zero events
}

TEST(Syscalls, MmapAndWxEnforcement) {
  Assembler a("t");
  a.label("e");
  a.movi(Reg::R1, 0);
  a.movi(Reg::R2, 8192);
  a.movi(Reg::R3, 3);  // RW
  emit_syscall(a, Sys::kMmap);
  a.mov(Reg::R5, Reg::R0);
  // store/load through the new mapping
  a.movi(Reg::R7, 123);
  a.store(Reg::R5, 0, Reg::R7, 8);
  a.load(Reg::R8, Reg::R5, 8);
  // try W+X: must fail with EINVAL
  a.movi(Reg::R1, 0);
  a.movi(Reg::R2, 4096);
  a.movi(Reg::R3, 7);  // RWX
  emit_syscall(a, Sys::kMmap);
  a.cmpi(Reg::R0, -22);
  a.jcc(Cond::kEq, "ok");
  a.movi(Reg::R1, 1);
  emit_syscall(a, Sys::kExitGroup);
  a.label("ok");
  a.mov(Reg::R1, Reg::R8);
  emit_syscall(a, Sys::kExitGroup);
  a.set_entry("e");
  LinuxWorld w(a.build());
  w.k.run(200000);
  EXPECT_EQ(w.p().exit_info().code, 123);
}

TEST(Threads, SpawnAndRunConcurrently) {
  Assembler a("t");
  a.label("e");
  a.lea_pc(Reg::R1, "worker");
  a.movi(Reg::R2, 0);
  emit_syscall(a, Sys::kThreadCreate);
  // Busy-wait until worker writes the flag.
  a.label("spin");
  a.lea_pc(Reg::R3, "flag");
  a.load(Reg::R4, Reg::R3, 8);
  a.cmpi(Reg::R4, 1);
  a.jcc(Cond::kNe, "spin");
  a.movi(Reg::R1, 0);
  emit_syscall(a, Sys::kExitGroup);
  a.label("worker");
  a.lea_pc(Reg::R3, "flag");
  a.movi(Reg::R4, 1);
  a.store(Reg::R3, 0, Reg::R4, 8);
  emit_syscall(a, Sys::kExit);
  a.set_entry("e");
  a.data_u64("flag", 0);
  LinuxWorld w(a.build());
  w.k.run(1'000'000);
  ASSERT_FALSE(w.p().alive());
  EXPECT_EQ(w.p().exit_info().code, 0);
}

TEST(Threads, ThreadCrashKillsProcess) {
  Assembler a("t");
  a.label("e");
  a.lea_pc(Reg::R1, "worker");
  a.movi(Reg::R2, 0);
  emit_syscall(a, Sys::kThreadCreate);
  a.label("spin");  // main spins forever
  a.jmp("spin");
  a.label("worker");
  a.movi(Reg::R2, 0x400000);
  a.load(Reg::R1, Reg::R2, 8);  // AV in the worker thread
  emit_syscall(a, Sys::kExit);
  a.set_entry("e");
  LinuxWorld w(a.build());
  w.k.run(1'000'000);
  ASSERT_FALSE(w.p().alive());
  EXPECT_TRUE(w.p().exit_info().crashed);
}

TEST(Workers, SpawnWorkerInheritsConnection) {
  // Master accepts, spawns a worker with the connection; worker reads and
  // exits with the byte count; master keeps running.
  Assembler a("pg");
  a.label("e");
  emit_syscall(a, Sys::kSocket);
  a.mov(Reg::R5, Reg::R0);
  a.mov(Reg::R1, Reg::R5);
  a.movi(Reg::R2, 5432);
  emit_syscall(a, Sys::kBind);
  a.mov(Reg::R1, Reg::R5);
  emit_syscall(a, Sys::kListen);
  a.mov(Reg::R1, Reg::R5);
  a.movi(Reg::R2, 0);
  emit_syscall(a, Sys::kAccept);
  a.mov(Reg::R6, Reg::R0);
  a.lea_pc(Reg::R1, "worker");
  a.mov(Reg::R2, Reg::R6);
  emit_syscall(a, Sys::kSpawnWorker);
  a.label("spin");
  a.movi(Reg::R1, 1);
  a.lea_pc(Reg::R1, "ts");
  emit_syscall(a, Sys::kNanosleep);
  a.jmp("spin");
  a.label("worker");
  // R1 = conn fd (3)
  a.mov(Reg::R5, Reg::R1);
  a.mov(Reg::R1, Reg::R5);
  a.lea_pc(Reg::R2, "buf");
  a.movi(Reg::R3, 64);
  emit_syscall(a, Sys::kRead);
  a.mov(Reg::R1, Reg::R0);
  emit_syscall(a, Sys::kExitGroup);
  a.set_entry("e");
  a.data_u64("ts", 1000000);
  a.data_zero("buf", 64);
  LinuxWorld w(a.build());
  w.k.run(300000);  // server reaches accept
  auto client = w.k.connect(5432);
  ASSERT_TRUE(client.has_value());
  w.k.run(300000);  // accept + spawn_worker; worker blocks in read
  client->send("abc");
  w.k.run(2'000'000);
  // Find the worker process.
  const Process* worker = nullptr;
  for (int pid : w.k.pids())
    if (pid != w.pid) worker = w.k.find_proc(pid);
  ASSERT_NE(worker, nullptr);
  EXPECT_FALSE(worker->alive());
  EXPECT_EQ(worker->exit_info().code, 3);
  EXPECT_FALSE(worker->exit_info().crashed);
  EXPECT_TRUE(w.p().alive());  // master unaffected
}

TEST(WinApi, VirtualQueryReportsState) {
  Assembler a("app");
  a.label("e");
  // VirtualQuery(code_base, &mbi, 32): probe our own code (mapped R|X).
  a.lea_pc(Reg::R1, "e");
  a.lea_pc(Reg::R2, "mbi");
  a.movi(Reg::R3, 32);
  a.apicall(kApiVirtualQuery);
  a.lea_pc(Reg::R2, "mbi");
  a.load(Reg::R0, Reg::R2, 8, 16);  // state field
  a.halt();
  a.set_entry("e");
  a.data_zero("mbi", 32);
  Kernel k;
  int pid = k.create_process("app", vm::Personality::kWindows, 3);
  k.proc(pid).load(std::make_shared<isa::Image>(a.build()));
  k.start_process(pid);
  k.run(100000);
  EXPECT_EQ(k.proc(pid).threads()[0].cpu.reg(Reg::R0), 1u);
}

TEST(WinApi, UncheckedDerefApiFaultsIntoSeh) {
  // A generated kUncheckedDeref API is called with a bad pointer inside a
  // catch-all guard: the process survives and observes the handler path.
  Kernel k;
  k.winapi().generate_population(77, 50, 1.0, 0.0);  // all unchecked-deref
  // Find a generated API with a PtrIn-ish argument.
  u32 api_id = 0;
  int arg_slot = 0;
  for (const auto& [id, spec] : k.winapi().all()) {
    if (id < kApiPopulationBase || spec.behavior != ApiBehavior::kUncheckedDeref) continue;
    for (size_t i = 0; i < spec.args.size(); ++i)
      if (spec.args[i] != ArgKind::kValue) {
        api_id = id;
        arg_slot = static_cast<int>(i) + 1;
        break;
      }
    if (api_id != 0) break;
  }
  ASSERT_NE(api_id, 0u);

  Assembler a("app");
  a.label("e");
  a.movi(Reg::R1, 8);
  a.movi(Reg::R2, 8);
  a.movi(Reg::R3, 8);
  a.movi(Reg::R4, 8);
  a.movi(static_cast<Reg>(arg_slot), 0x400000);
  a.label("tb");
  a.apicall(api_id);
  a.label("te");
  a.movi(Reg::R0, 1);
  a.halt();
  a.label("h");
  a.movi(Reg::R0, 2);
  a.halt();
  a.set_entry("e");
  a.scope("tb", "te", "", "h");
  int pid = k.create_process("app", vm::Personality::kWindows, 3);
  k.proc(pid).load(std::make_shared<isa::Image>(a.build()));
  k.start_process(pid);
  k.run(100000);
  EXPECT_FALSE(k.proc(pid).exit_info().crashed);
  EXPECT_EQ(k.proc(pid).threads()[0].cpu.reg(Reg::R0), 2u);  // handler ran
}

TEST(WinApi, ValidatingApiSurvivesBadPointerWithoutSeh) {
  Kernel k;
  Assembler a("app");
  a.label("e");
  a.movi(Reg::R1, 0x400000);  // bad buffer
  a.movi(Reg::R2, 4);
  a.apicall(kApiWriteConsole);
  a.halt();
  a.set_entry("e");
  int pid = k.create_process("app", vm::Personality::kWindows, 3);
  k.proc(pid).load(std::make_shared<isa::Image>(a.build()));
  k.start_process(pid);
  k.run(100000);
  EXPECT_FALSE(k.proc(pid).exit_info().crashed);
  EXPECT_EQ(k.proc(pid).threads()[0].cpu.reg(Reg::R0), ~0ull);  // error return
}

TEST(WinApi, AddVehRegistersHandler) {
  Kernel k;
  Assembler a("app");
  a.label("e");
  a.movi(Reg::R1, 1);
  a.movi(Reg::R2, 0x12345);
  a.apicall(kApiAddVeh);
  a.halt();
  a.set_entry("e");
  int pid = k.create_process("app", vm::Personality::kWindows, 3);
  k.proc(pid).load(std::make_shared<isa::Image>(a.build()));
  k.start_process(pid);
  k.run(100000);
  ASSERT_EQ(k.proc(pid).machine().veh_chain().size(), 1u);
  EXPECT_EQ(k.proc(pid).machine().veh_chain()[0], 0x12345u);
}

TEST(Kernel, VirtualTimeAdvances) {
  Assembler a("t");
  a.label("e");
  a.label("spin");
  a.jmp("spin");
  a.set_entry("e");
  LinuxWorld w(a.build());
  u64 t0 = w.k.now_ns();
  w.k.run(10000);
  EXPECT_GT(w.k.now_ns(), t0);
}

TEST(Kernel, RunStopsWhenQuiescent) {
  Assembler a("t");
  a.label("e");
  a.movi(Reg::R1, 0);
  emit_syscall(a, Sys::kExitGroup);
  a.set_entry("e");
  LinuxWorld w(a.build());
  u64 executed = w.k.run(1'000'000'000);
  EXPECT_LT(executed, 1000u);  // stopped immediately after exit
}

}  // namespace
}  // namespace crp::os

// Appended coverage: non-blocking accept, epoll ctl edge cases, process
// teardown.
namespace crp::os {
namespace {

TEST(Syscalls, NonBlockingAcceptReturnsEagain) {
  Assembler a("t");
  a.label("e");
  emit_syscall(a, Sys::kSocket);
  a.mov(Reg::R5, Reg::R0);
  a.mov(Reg::R1, Reg::R5);
  a.movi(Reg::R2, 7070);
  emit_syscall(a, Sys::kBind);
  a.mov(Reg::R1, Reg::R5);
  emit_syscall(a, Sys::kListen);
  a.mov(Reg::R1, Reg::R5);
  a.movi(Reg::R2, 0);
  a.movi(Reg::R3, 1);  // non-blocking
  emit_syscall(a, Sys::kAccept);
  a.mov(Reg::R1, Reg::R0);
  emit_syscall(a, Sys::kExitGroup);
  a.set_entry("e");
  LinuxWorld w(a.build());
  w.k.run(100000);
  ASSERT_FALSE(w.p().alive());
  EXPECT_EQ(w.p().exit_info().code, -kEAGAIN);
}

TEST(Syscalls, EpollCtlDelStopsEvents) {
  Assembler a("t");
  a.label("e");
  emit_syscall(a, Sys::kEpollCreate);
  a.mov(Reg::R5, Reg::R0);
  // Watch stdout (console: always ready), then DEL it; epoll_wait(0) => 0.
  a.lea_pc(Reg::R7, "ev");
  a.movi(Reg::R8, 1);
  a.store(Reg::R7, 0, Reg::R8, 8);
  a.movi(Reg::R8, 1);
  a.store(Reg::R7, 8, Reg::R8, 8);
  a.mov(Reg::R1, Reg::R5);
  a.movi(Reg::R2, 1);  // ADD
  a.movi(Reg::R3, 1);  // fd 1
  a.mov(Reg::R4, Reg::R7);
  emit_syscall(a, Sys::kEpollCtl);
  a.mov(Reg::R1, Reg::R5);
  a.movi(Reg::R2, 2);  // DEL
  a.movi(Reg::R3, 1);
  a.movi(Reg::R4, 0);
  emit_syscall(a, Sys::kEpollCtl);
  a.mov(Reg::R1, Reg::R5);
  a.lea_pc(Reg::R2, "events");
  a.movi(Reg::R3, 4);
  a.movi(Reg::R4, 0);  // timeout 0: poll
  emit_syscall(a, Sys::kEpollWait);
  a.mov(Reg::R1, Reg::R0);
  emit_syscall(a, Sys::kExitGroup);
  a.set_entry("e");
  a.data_zero("ev", 16);
  a.data_zero("events", 64);
  LinuxWorld w(a.build());
  w.k.run(100000);
  EXPECT_EQ(w.p().exit_info().code, 0);  // no events after DEL
}

TEST(Kernel, DestroyProcessReclaims) {
  Kernel k;
  int pid = k.create_process("scratch", vm::Personality::kWindows, 1);
  k.proc(pid).heap_alloc(4096, mem::kPermR | mem::kPermW);
  EXPECT_NE(k.find_proc(pid), nullptr);
  k.destroy_process(pid);
  EXPECT_EQ(k.find_proc(pid), nullptr);
  k.destroy_process(pid);  // idempotent
}

TEST(WinApi, IsBadReadPtrQueriesLayout) {
  Kernel k;
  Assembler a("app");
  a.label("e");
  a.lea_pc(Reg::R1, "e");  // own code: readable
  a.movi(Reg::R2, 8);
  a.apicall(kApiIsBadReadPtr);
  a.mov(Reg::R7, Reg::R0);   // 0 = fine
  a.movi(Reg::R1, 0x400000);
  a.movi(Reg::R2, 8);
  a.apicall(kApiIsBadReadPtr);
  a.add(Reg::R0, Reg::R7);   // 1 + 0
  a.halt();
  a.set_entry("e");
  int pid = k.create_process("app", vm::Personality::kWindows, 5);
  k.proc(pid).load(std::make_shared<isa::Image>(a.build()));
  k.start_process(pid);
  k.run(100000);
  EXPECT_EQ(k.proc(pid).threads()[0].cpu.reg(Reg::R0), 1u);
}

// --- crp::chaos satellites: partial-transfer handling under fault injection ---

// A read loop accumulating into buf+total converges to the full file even
// when every read is cut short: injected short reads return fewer bytes but
// never lose any (the kernel clamps the length *before* consuming the
// stream), so the next iteration picks up exactly where this one stopped.
TEST(Syscalls, ShortReadLoopStillReadsWholeFile) {
  Assembler a("t");
  a.label("e");
  a.lea_pc(Reg::R1, "path");
  a.movi(Reg::R2, 0);
  emit_syscall(a, Sys::kOpen);
  a.mov(Reg::R5, Reg::R0);  // fd
  a.movi(Reg::R7, 0);       // total
  a.label("loop");
  a.mov(Reg::R1, Reg::R5);
  a.lea_pc(Reg::R2, "buf");
  a.add(Reg::R2, Reg::R7);  // buf + total
  a.movi(Reg::R3, 32);
  a.sub(Reg::R3, Reg::R7);  // want - total
  emit_syscall(a, Sys::kRead);
  a.cmpi(Reg::R0, 0);
  a.jcc(Cond::kLe, "done");  // EOF or error: stop
  a.add(Reg::R7, Reg::R0);
  a.cmpi(Reg::R7, 32);
  a.jcc(Cond::kLt, "loop");
  a.label("done");
  a.mov(Reg::R1, Reg::R7);
  emit_syscall(a, Sys::kExitGroup);
  a.set_entry("e");
  a.data_cstr("path", "/f");
  a.data_zero("buf", 32);
  isa::Image img = a.build();

  // The invariant must hold at every seed; at least one seed in the sweep
  // must actually cut a read short, or the test proves nothing.
  size_t fired = 0;
  for (u64 seed = 1; seed <= 8; ++seed) {
    chaos::FaultPlan plan;
    plan.seed = seed;
    plan.rate = 2;
    plan.points = chaos::point_bit(chaos::Point::kShortRead);
    chaos::ScopedPlan scope(plan);
    LinuxWorld w(img);
    w.k.vfs().put_file("/f", "0123456789abcdefghijklmnopqrstuv");
    w.k.run(300000);

    ASSERT_FALSE(w.p().alive()) << "seed " << seed;
    EXPECT_FALSE(w.p().exit_info().crashed) << "seed " << seed;
    EXPECT_EQ(w.p().exit_info().code, 32) << "seed " << seed;  // every byte arrived
    gva_t buf = w.p().machine().modules()[0].symbol_addr("buf");
    u64 first8 = 0, last8 = 0;
    ASSERT_TRUE(w.p().machine().mem().peek_u64(buf, &first8));
    ASSERT_TRUE(w.p().machine().mem().peek_u64(buf + 24, &last8));
    EXPECT_EQ(first8 & 0xff, u64{'0'}) << "seed " << seed;
    EXPECT_EQ(last8 >> 56, u64{'v'}) << "seed " << seed;  // the tail survived
    fired += scope.events().size();
  }
  EXPECT_GT(fired, 0u);  // reads really were cut short somewhere in the sweep
}

// The mirrored write loop: injected short writes consume a prefix; the loop
// advances by the returned count and the vfs file ends up byte-complete.
TEST(Syscalls, ShortWriteLoopStillWritesWholeFile) {
  Assembler a("t");
  a.label("e");
  a.lea_pc(Reg::R1, "path");
  a.movi(Reg::R2, static_cast<i64>(kOWronly | kOCreat));
  emit_syscall(a, Sys::kOpen);
  a.mov(Reg::R5, Reg::R0);  // fd
  a.movi(Reg::R7, 0);       // total
  a.label("loop");
  a.mov(Reg::R1, Reg::R5);
  a.lea_pc(Reg::R2, "msg");
  a.add(Reg::R2, Reg::R7);
  a.movi(Reg::R3, 24);
  a.sub(Reg::R3, Reg::R7);
  emit_syscall(a, Sys::kWrite);
  a.cmpi(Reg::R0, 0);
  a.jcc(Cond::kLe, "done");
  a.add(Reg::R7, Reg::R0);
  a.cmpi(Reg::R7, 24);
  a.jcc(Cond::kLt, "loop");
  a.label("done");
  a.mov(Reg::R1, Reg::R7);
  emit_syscall(a, Sys::kExitGroup);
  a.set_entry("e");
  a.data_cstr("path", "/out");
  a.data_cstr("msg", "the quick brown fox jump");
  isa::Image img = a.build();

  size_t fired = 0;
  for (u64 seed = 1; seed <= 8; ++seed) {
    chaos::FaultPlan plan;
    plan.seed = seed;
    plan.rate = 2;
    plan.points = chaos::point_bit(chaos::Point::kShortWrite);
    chaos::ScopedPlan scope(plan);
    LinuxWorld w(img);
    w.k.run(300000);

    ASSERT_FALSE(w.p().alive()) << "seed " << seed;
    EXPECT_FALSE(w.p().exit_info().crashed) << "seed " << seed;
    EXPECT_EQ(w.p().exit_info().code, 24) << "seed " << seed;
    const VfsNode* node = w.k.vfs().resolve("/out");
    ASSERT_NE(node, nullptr) << "seed " << seed;
    std::string got(node->data.begin(), node->data.end());
    EXPECT_EQ(got, "the quick brown fox jump") << "seed " << seed;
    fired += scope.events().size();
  }
  EXPECT_GT(fired, 0u);
}

// Network variant: the byte-count server from ReadFromClientBlocksUntilData,
// now retrying injected -EINTR and accumulating short reads — the count it
// exits with must still equal exactly what the client sent.
TEST(Syscalls, NetReadLoopSurvivesEintrAndShortReads) {
  Assembler a("srv");
  a.label("e");
  emit_syscall(a, Sys::kSocket);
  a.mov(Reg::R5, Reg::R0);
  a.mov(Reg::R1, Reg::R5);
  a.movi(Reg::R2, 8080);
  emit_syscall(a, Sys::kBind);
  a.mov(Reg::R1, Reg::R5);
  emit_syscall(a, Sys::kListen);
  a.mov(Reg::R1, Reg::R5);
  a.movi(Reg::R2, 0);
  emit_syscall(a, Sys::kAccept);
  a.mov(Reg::R6, Reg::R0);
  a.movi(Reg::R7, 0);  // total
  a.label("loop");
  a.mov(Reg::R1, Reg::R6);
  a.lea_pc(Reg::R2, "buf");
  a.add(Reg::R2, Reg::R7);
  a.movi(Reg::R3, 16);
  a.sub(Reg::R3, Reg::R7);
  emit_syscall(a, Sys::kRead);
  a.cmpi(Reg::R0, -kEINTR);
  a.jcc(Cond::kEq, "loop");  // spurious interrupt: try again
  a.cmpi(Reg::R0, 0);
  a.jcc(Cond::kLe, "done");
  a.add(Reg::R7, Reg::R0);
  a.cmpi(Reg::R7, 16);
  a.jcc(Cond::kLt, "loop");
  a.label("done");
  a.mov(Reg::R1, Reg::R7);
  emit_syscall(a, Sys::kExitGroup);
  a.set_entry("e");
  a.data_zero("buf", 16);
  isa::Image img = a.build();

  size_t fired = 0;
  for (u64 seed = 1; seed <= 8; ++seed) {
    chaos::FaultPlan plan;
    plan.seed = seed;
    plan.rate = 3;
    plan.points =
        chaos::point_bit(chaos::Point::kSysEintr) | chaos::point_bit(chaos::Point::kShortRead);
    chaos::ScopedPlan scope(plan);
    LinuxWorld w(img);
    w.k.run(50000);
    EXPECT_TRUE(w.p().alive()) << "seed " << seed;
    auto client = w.k.connect(8080);
    ASSERT_TRUE(client.has_value()) << "seed " << seed;
    w.k.run(50000);
    client->send("exactly sixteen!");
    w.k.run(200000);

    ASSERT_FALSE(w.p().alive()) << "seed " << seed;
    EXPECT_FALSE(w.p().exit_info().crashed) << "seed " << seed;
    EXPECT_EQ(w.p().exit_info().code, 16) << "seed " << seed;
    fired += scope.events().size();
  }
  EXPECT_GT(fired, 0u);
}

}  // namespace
}  // namespace crp::os
