#include <gtest/gtest.h>

#include "util/common.h"
#include "util/hexdump.h"
#include "util/interval_map.h"
#include "util/rng.h"
#include "util/table.h"

namespace crp {
namespace {

TEST(Strf, FormatsLikePrintf) {
  EXPECT_EQ(strf("x=%d y=%s", 42, "abc"), "x=42 y=abc");
  EXPECT_EQ(strf("%08llx", 0xbeefULL), "0000beef");
  EXPECT_EQ(strf("empty"), "empty");
}

TEST(Align, UpAndDown) {
  EXPECT_EQ(align_down(4097, 4096), 4096u);
  EXPECT_EQ(align_down(4096, 4096), 4096u);
  EXPECT_EQ(align_up(4097, 4096), 8192u);
  EXPECT_EQ(align_up(4096, 4096), 4096u);
  EXPECT_EQ(align_up(0, 4096), 0u);
}

TEST(HumanSize, Units) {
  EXPECT_EQ(human_size(512), "512.0B");
  EXPECT_EQ(human_size(4096), "4.0KiB");
  EXPECT_EQ(human_size(3u << 20), "3.0MiB");
}

TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next() == b.next() ? 1 : 0;
  EXPECT_LT(same, 4);
}

TEST(Rng, BelowIsInRange) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(r.below(17), 17u);
}

TEST(Rng, RangeInclusive) {
  Rng r(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    u64 v = r.range(3, 6);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 6u);
    saw_lo |= v == 3;
    saw_hi |= v == 6;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, ChanceExtremes) {
  Rng r(11);
  EXPECT_FALSE(r.chance(0.0));
  EXPECT_TRUE(r.chance(1.0));
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(13);
  for (int i = 0; i < 1000; ++i) {
    double v = r.uniform();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(IntervalMap, InsertAndFind) {
  IntervalMap<int> m;
  EXPECT_TRUE(m.insert(10, 20, 1));
  EXPECT_TRUE(m.insert(20, 30, 2));
  EXPECT_FALSE(m.insert(15, 25, 3));  // overlap
  EXPECT_FALSE(m.insert(5, 5, 4));    // empty
  ASSERT_NE(m.find(10), nullptr);
  EXPECT_EQ(m.find(10)->value, 1);
  ASSERT_NE(m.find(19), nullptr);
  EXPECT_EQ(m.find(19)->value, 1);
  ASSERT_NE(m.find(20), nullptr);
  EXPECT_EQ(m.find(20)->value, 2);
  EXPECT_EQ(m.find(9), nullptr);
  EXPECT_EQ(m.find(30), nullptr);
}

TEST(IntervalMap, OverlapQueries) {
  IntervalMap<int> m;
  m.insert(100, 200, 1);
  EXPECT_TRUE(m.overlaps(150, 160));
  EXPECT_TRUE(m.overlaps(50, 101));
  EXPECT_TRUE(m.overlaps(199, 300));
  EXPECT_FALSE(m.overlaps(200, 300));
  EXPECT_FALSE(m.overlaps(0, 100));
}

TEST(IntervalMap, Intersecting) {
  IntervalMap<int> m;
  m.insert(0, 10, 1);
  m.insert(10, 20, 2);
  m.insert(30, 40, 3);
  auto hits = m.intersecting(5, 35);
  ASSERT_EQ(hits.size(), 3u);
  EXPECT_EQ(hits[0]->value, 1);
  EXPECT_EQ(hits[2]->value, 3);
}

TEST(IntervalMap, Erase) {
  IntervalMap<int> m;
  m.insert(0, 10, 1);
  EXPECT_TRUE(m.erase_containing(5));
  EXPECT_EQ(m.find(5), nullptr);
  EXPECT_FALSE(m.erase_containing(5));
  m.insert(0, 10, 2);
  EXPECT_TRUE(m.erase_at(0));
  EXPECT_TRUE(m.empty());
}

TEST(Hexdump, Format) {
  std::vector<u8> data = {'H', 'i', 0x00, 0xff};
  std::string out = hexdump(data, 0x1000);
  EXPECT_NE(out.find("48 69 00 ff"), std::string::npos);
  EXPECT_NE(out.find("|Hi..|"), std::string::npos);
  EXPECT_NE(out.find("000000001000"), std::string::npos);
}

TEST(HexBytes, Format) {
  std::vector<u8> data = {0xde, 0xad};
  EXPECT_EQ(hex_bytes(data), "de ad");
}

TEST(TextTable, RendersAligned) {
  TextTable t;
  t.header({"name", "n"});
  t.row({"alpha", "1"});
  t.row({"b", "22"});
  std::string out = t.render();
  EXPECT_NE(out.find("| name  | n  |"), std::string::npos);
  EXPECT_NE(out.find("| alpha | 1  |"), std::string::npos);
  EXPECT_NE(out.find("| b     | 22 |"), std::string::npos);
}

TEST(TextTable, PadsShortRows) {
  TextTable t;
  t.header({"a", "b", "c"});
  t.row({"x"});
  std::string out = t.render();
  EXPECT_NE(out.find("| x |"), std::string::npos);
}

}  // namespace
}  // namespace crp
