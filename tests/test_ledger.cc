// Flight-recorder tests: record/snapshot semantics, exact tallies under
// ring overflow, multi-threaded emission, binary and JSONL codecs (round
// trip + corruption rejection), the zero-crash audit (including a doctored
// crash event and the stage scoping of the invariant), the ledger/counter
// cross-check, and file output via write_files.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "obs/ledger.h"
#include "obs/obs.h"

namespace crp::obs {
namespace {

#define REQUIRE_OBS_COMPILED_IN() \
  if (!kCompiledIn) GTEST_SKIP() << "observability compiled out (CRP_OBS_DISABLED)"

ProbeEvent ev(LedgerStage st, ProbeOutcome oc, u32 prim, u32 tgt, u64 addr, u64 ts) {
  ProbeEvent e;
  e.ts_ns = ts;
  e.addr = addr;
  e.primitive = prim;
  e.target = tgt;
  e.outcome = static_cast<u8>(oc);
  e.stage = static_cast<u8>(st);
  return e;
}

TEST(Ledger, RecordSnapshotTallies) {
  REQUIRE_OBS_COMPILED_IN();
  Ledger led;
  u32 prim = led.intern("nginx-recv");
  u32 tgt = led.intern("nginx");
  led.record(LedgerStage::kSweep, ProbeOutcome::kSurvive, prim, tgt, 0x1000, 10);
  led.record(LedgerStage::kSweep, ProbeOutcome::kEfault, prim, tgt, 0x2000, 20);
  led.record(LedgerStage::kHunt, ProbeOutcome::kSurvive, prim, tgt, 0x3000, 30);

  std::vector<ProbeEvent> evs = led.snapshot();
  ASSERT_EQ(evs.size(), 3u);
  EXPECT_EQ(evs[0].ts_ns, 10u);  // snapshot is ts-sorted
  EXPECT_EQ(evs[0].addr, 0x1000u);
  EXPECT_EQ(evs[2].stage, static_cast<u8>(LedgerStage::kHunt));

  EXPECT_EQ(led.total(prim, ProbeOutcome::kSurvive), 2u);
  EXPECT_EQ(led.total(prim, ProbeOutcome::kEfault), 1u);
  EXPECT_EQ(led.total(prim, ProbeOutcome::kCrash), 0u);
  EXPECT_EQ(led.total(prim, LedgerStage::kSweep, ProbeOutcome::kSurvive), 1u);
  EXPECT_EQ(led.stage_total(LedgerStage::kHunt, ProbeOutcome::kSurvive), 1u);
  EXPECT_EQ(led.total_events(), 3u);
  EXPECT_EQ(led.dropped(), 0u);

  // A second snapshot returns the same archive (drained rings are empty).
  EXPECT_EQ(led.snapshot().size(), 3u);
}

TEST(Ledger, InternIsStableAndBounded) {
  REQUIRE_OBS_COMPILED_IN();
  Ledger led;
  EXPECT_EQ(led.name_of(0), "-");
  u32 a = led.intern("alpha");
  EXPECT_GE(a, 1u);
  EXPECT_EQ(led.intern("alpha"), a);  // idempotent
  EXPECT_EQ(led.name_of(a), "alpha");
  EXPECT_EQ(led.name_of(9999), "-");  // out of range folds to unknown
  for (u32 i = 0; i < Ledger::kMaxNames + 8; ++i)
    led.intern(strf("name-%u", i));
  EXPECT_EQ(led.intern("one-more"), 0u);  // table full folds to id 0
}

TEST(Ledger, RingOverflowDropsEventsButTalliesStayExact) {
  REQUIRE_OBS_COMPILED_IN();
  Ledger led(/*ring_capacity=*/16);
  u32 prim = led.intern("p");
  const u64 n = 100;
  for (u64 i = 0; i < n; ++i)
    led.record(LedgerStage::kSweep, ProbeOutcome::kSurvive, prim, 0, i, i);
  EXPECT_EQ(led.total(prim, ProbeOutcome::kSurvive), n);
  EXPECT_EQ(led.dropped(), n - 16);
  EXPECT_EQ(led.snapshot().size(), 16u);
  // The audit must tolerate the stream lagging the tallies when drops > 0.
  LedgerAudit audit = audit_ledger(led);
  EXPECT_TRUE(audit.ok()) << audit.summary();
  EXPECT_EQ(audit.dropped, n - 16);
}

TEST(Ledger, MultiThreadedEmission) {
  REQUIRE_OBS_COMPILED_IN();
  Ledger led;
  u32 prim = led.intern("p");
  constexpr int kThreads = 4;
  constexpr u64 kPerThread = 500;
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t)
    ts.emplace_back([&led, prim, t] {
      led.register_current_thread();
      for (u64 i = 0; i < kPerThread; ++i)
        led.record(LedgerStage::kHunt, ProbeOutcome::kEfault, prim, 0,
                   static_cast<u64>(t) * kPerThread + i, i);
    });
  for (auto& th : ts) th.join();
  EXPECT_EQ(led.total(prim, ProbeOutcome::kEfault), kThreads * kPerThread);
  EXPECT_EQ(led.snapshot().size(), kThreads * kPerThread);
  EXPECT_EQ(led.dropped(), 0u);
}

TEST(Ledger, BinaryRoundTrip) {
  REQUIRE_OBS_COMPILED_IN();
  Ledger led;
  u32 prim = led.intern("ie-mutx-seh");
  u32 tgt = led.intern("ie");
  led.record(LedgerStage::kOracle, ProbeOutcome::kSurvive, prim, tgt, 0xdead0000, 7);
  led.record(LedgerStage::kOracle, ProbeOutcome::kTimeout, prim, tgt, 0, 9);
  std::vector<ProbeEvent> evs = led.snapshot();

  std::string doc = led.encode_binary(evs);
  std::vector<ProbeEvent> back;
  std::vector<std::string> names;
  ASSERT_TRUE(Ledger::decode_binary(doc, &back, &names));
  EXPECT_EQ(back, evs);  // byte-exact: ids preserved
  ASSERT_GT(names.size(), prim);
  EXPECT_EQ(names[prim], "ie-mutx-seh");

  // Corruption must be rejected, not crash.
  std::string bad = doc;
  bad[0] = 'X';
  EXPECT_FALSE(Ledger::decode_binary(bad, &back, nullptr));
  EXPECT_FALSE(Ledger::decode_binary(doc.substr(0, doc.size() / 2), &back, nullptr));
  EXPECT_FALSE(Ledger::decode_binary("", &back, nullptr));
}

TEST(Ledger, JsonlRoundTrip) {
  REQUIRE_OBS_COMPILED_IN();
  Ledger led;
  u32 prim = led.intern("firefox-poll");
  u32 tgt = led.intern("firefox \"esc\"");  // exercises escaping
  led.record(LedgerStage::kHunt, ProbeOutcome::kSurvive, prim, tgt, 0xabc000, 100);
  led.record(LedgerStage::kHunt, ProbeOutcome::kEfault, prim, tgt, 0xdef000, 200);
  std::vector<ProbeEvent> evs = led.snapshot();
  std::string doc = led.encode_jsonl(evs);
  EXPECT_NE(doc.find("\"outcome\":\"survive\""), std::string::npos);
  EXPECT_NE(doc.find("\"stage\":\"hunt\""), std::string::npos);

  // Decode into a FRESH ledger: ids may differ, names must survive.
  Ledger fresh;
  std::vector<ProbeEvent> back;
  ASSERT_TRUE(fresh.decode_jsonl(doc, &back));
  ASSERT_EQ(back.size(), evs.size());
  for (size_t i = 0; i < evs.size(); ++i) {
    EXPECT_EQ(back[i].ts_ns, evs[i].ts_ns);
    EXPECT_EQ(back[i].addr, evs[i].addr);
    EXPECT_EQ(back[i].stage, evs[i].stage);
    EXPECT_EQ(back[i].outcome, evs[i].outcome);
    EXPECT_EQ(fresh.name_of(back[i].primitive), led.name_of(evs[i].primitive));
    EXPECT_EQ(fresh.name_of(back[i].target), led.name_of(evs[i].target));
  }

  Ledger sink;
  EXPECT_FALSE(sink.decode_jsonl("{\"not\":\"a ledger line\"}\n", &back));
}

TEST(Ledger, WriteFilesProducesBothEncodings) {
  REQUIRE_OBS_COMPILED_IN();
  Ledger led;
  u32 prim = led.intern("p");
  led.record(LedgerStage::kSweep, ProbeOutcome::kSurvive, prim, 0, 0x1000, 1);
  std::string path =
      (std::filesystem::temp_directory_path() / "crp_test_ledger.bin").string();
  ASSERT_TRUE(led.write_files(path));

  std::ifstream bin(path, std::ios::binary);
  std::stringstream bs;
  bs << bin.rdbuf();
  std::vector<ProbeEvent> evs;
  EXPECT_TRUE(Ledger::decode_binary(bs.str(), &evs, nullptr));
  EXPECT_EQ(evs.size(), 1u);

  Ledger fresh;
  std::ifstream jf(path + ".jsonl");
  std::stringstream js;
  js << jf.rdbuf();
  EXPECT_TRUE(fresh.decode_jsonl(js.str(), &evs));
  EXPECT_EQ(evs.size(), 1u);
  std::remove(path.c_str());
  std::remove((path + ".jsonl").c_str());
}

// --- audit -------------------------------------------------------------------

TEST(LedgerAudit, CleanLedgerPasses) {
  REQUIRE_OBS_COMPILED_IN();
  Ledger led;
  u32 prim = led.intern("nginx-recv");
  for (u64 i = 0; i < 50; ++i)
    led.record(LedgerStage::kSweep,
               i % 3 == 0 ? ProbeOutcome::kEfault : ProbeOutcome::kSurvive, prim, 0,
               0x1000 * i, i);
  LedgerAudit audit = audit_ledger(led);
  EXPECT_TRUE(audit.ok()) << audit.summary();
  EXPECT_TRUE(audit.zero_crash());
  EXPECT_EQ(audit.events, 50u);
  ASSERT_EQ(audit.primitives.size(), 1u);
  EXPECT_EQ(audit.primitives[0].name, "nginx-recv");
  EXPECT_NE(audit.summary().find("PASS"), std::string::npos);
}

TEST(LedgerAudit, CatchesRecordedCrash) {
  REQUIRE_OBS_COMPILED_IN();
  Ledger led;
  u32 prim = led.intern("crash-tolerant");
  led.record(LedgerStage::kOracle, ProbeOutcome::kSurvive, prim, 0, 0x1000, 1);
  led.record(LedgerStage::kOracle, ProbeOutcome::kCrash, prim, 0, 0x2000, 2);
  LedgerAudit audit = audit_ledger(led);
  EXPECT_FALSE(audit.ok());
  EXPECT_FALSE(audit.zero_crash());
  EXPECT_EQ(audit.crash_events, 1u);
  ASSERT_EQ(audit.violations.size(), 1u);
  EXPECT_NE(audit.violations[0].find("zero-crash invariant"), std::string::npos);
  EXPECT_NE(audit.violations[0].find("crash-tolerant"), std::string::npos);
  EXPECT_NE(audit.summary().find("FAIL"), std::string::npos);
}

TEST(LedgerAudit, CatchesInjectedCrashInDecodedStream) {
  REQUIRE_OBS_COMPILED_IN();
  // Offline path: a doctored JSONL document (no live tallies) must still
  // fail the zero-crash audit through audit_events.
  Ledger writer;
  u32 prim = writer.intern("nginx-recv");
  writer.record(LedgerStage::kSweep, ProbeOutcome::kSurvive, prim, 0, 0x1000, 1);
  std::string doc = writer.encode_jsonl(writer.snapshot());
  doc +=
      "{\"ts_ns\":99,\"addr\":\"0x2000\",\"primitive\":\"nginx-recv\","
      "\"target\":\"-\",\"stage\":\"sweep\",\"outcome\":\"crash\",\"seq\":1}\n";

  Ledger reader;
  std::vector<ProbeEvent> evs;
  ASSERT_TRUE(reader.decode_jsonl(doc, &evs));
  LedgerAudit audit;
  audit_events(evs, reader, &audit);
  EXPECT_FALSE(audit.ok());
  EXPECT_EQ(audit.crash_events, 1u);
}

TEST(LedgerAudit, VerifyAndDefenseCrashesAreNotViolations) {
  REQUIRE_OBS_COMPILED_IN();
  // A verify-stage crash records a candidate being DISQUALIFIED and a
  // defense-stage crash the defender's view of a target death — neither
  // breaks the probing-stage zero-crash invariant.
  Ledger led;
  u32 prim = led.intern("read");
  led.record(LedgerStage::kVerify, ProbeOutcome::kCrash, prim, 0, 0x1000, 1);
  led.record(LedgerStage::kDefense, ProbeOutcome::kCrash, prim, 0, 0x2000, 2);
  LedgerAudit audit = audit_ledger(led);
  EXPECT_TRUE(audit.ok()) << audit.summary();
  EXPECT_EQ(audit.crash_events, 0u);
  // ...but the same outcome in a probing stage is.
  led.record(LedgerStage::kHunt, ProbeOutcome::kCrash, prim, 0, 0x3000, 3);
  audit = audit_ledger(led);
  EXPECT_FALSE(audit.ok());
  EXPECT_EQ(audit.crash_events, 1u);
}

TEST(LedgerAudit, CounterCrossCheckMatchesAndMismatches) {
  REQUIRE_OBS_COMPILED_IN();
  Ledger led;
  Registry reg;
  u32 prim = led.intern("p");
  // 3 sweep probes: 2 survive (mapped), 1 efault.
  led.record(LedgerStage::kSweep, ProbeOutcome::kSurvive, prim, 0, 0x1000, 1);
  led.record(LedgerStage::kSweep, ProbeOutcome::kSurvive, prim, 0, 0x2000, 2);
  led.record(LedgerStage::kSweep, ProbeOutcome::kEfault, prim, 0, 0x3000, 3);
  reg.counter("oracle.scan.probes").inc(3);
  reg.counter("oracle.scan.mapped_hits").inc(2);
  reg.counter("oracle.scan.crashes");
  LedgerAudit audit = audit_ledger(led, &reg);
  EXPECT_TRUE(audit.ok()) << audit.summary();

  // Doctor a counter: the cross-check must flag the disagreement.
  reg.counter("oracle.scan.probes").inc();
  audit = audit_ledger(led, &reg);
  EXPECT_FALSE(audit.ok());
  ASSERT_FALSE(audit.violations.empty());
  EXPECT_NE(audit.violations[0].find("cross-check"), std::string::npos);
}

TEST(LedgerAudit, ClearResetsEverything) {
  REQUIRE_OBS_COMPILED_IN();
  Ledger led;
  u32 prim = led.intern("p");
  led.record(LedgerStage::kSweep, ProbeOutcome::kCrash, prim, 0, 0x1000, 1);
  EXPECT_FALSE(audit_ledger(led).ok());
  led.clear();
  EXPECT_EQ(led.total_events(), 0u);
  EXPECT_EQ(led.snapshot().size(), 0u);
  LedgerAudit audit = audit_ledger(led);
  EXPECT_TRUE(audit.ok());
  EXPECT_EQ(audit.events, 0u);
}

}  // namespace
}  // namespace crp::obs
