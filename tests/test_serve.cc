// crp::obs::serve — routing of the live-telemetry endpoint and one real
// socket round-trip against an ephemeral port — and crp::serve — the crpd
// daemon: protocol parsing, admission control, concurrent clients, slow
// readers, and mid-request disconnects.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "obs/expo.h"
#include "obs/obs.h"
#include "obs/prof.h"
#include "obs/serve.h"
#include "obs/trace.h"
#include "pipeline/campaign.h"
#include "serve/client.h"
#include "serve/daemon.h"
#include "serve/protocol.h"

namespace crp::obs::serve {
namespace {

TEST(Respond, IndexListsEveryRoute) {
  Response r = respond("/");
  EXPECT_EQ(r.status, 200);
  for (const char* route : {"/metrics", "/metrics.json", "/flat.json",
                            "/ledger.json", "/prof.json", "/prof.folded"})
    EXPECT_NE(r.body.find(route), std::string::npos) << route;
}

TEST(Respond, MetricsCarriesRegistryCounters) {
  Registry::global().counter("vm.instr_retired");  // ensure it exists
  Response r = respond("/metrics");
  EXPECT_EQ(r.status, 200);
  EXPECT_NE(r.body.find("crp_vm_instr_retired"), std::string::npos);
}

TEST(Respond, FlatJsonIsBenchParseable) {
  Registry::global().counter("vm.instr_retired");
  Response r = respond("/flat.json");
  ASSERT_EQ(r.status, 200);
  EXPECT_EQ(r.content_type, "application/json");
  // crptop wraps /flat.json in the BENCH envelope and reuses the bench
  // parser; this is the contract that keeps the two in sync.
  expo::BenchDoc doc;
  std::string wrapped =
      "{\n\"bench\": \"live\",\n\"schema\": 1,\n\"metrics\": " + r.body + "\n}\n";
  ASSERT_TRUE(expo::parse_bench_json(wrapped, &doc));
  EXPECT_TRUE(doc.has("vm.instr_retired"));
}

TEST(Respond, LedgerAndProfRoutesAreWellFormed) {
  Response ledger = respond("/ledger.json");
  EXPECT_EQ(ledger.status, 200);
  EXPECT_NE(ledger.body.find("\"stages\""), std::string::npos);
  EXPECT_NE(ledger.body.find("\"events\""), std::string::npos);

  Response prof = respond("/prof.json");
  EXPECT_EQ(prof.status, 200);
  EXPECT_NE(prof.body.find("\"hot_blocks\""), std::string::npos);

  EXPECT_EQ(respond("/prof.folded").status, 200);
}

TEST(Respond, UnknownPathIs404) {
  EXPECT_EQ(respond("/nope").status, 404);
  EXPECT_EQ(respond("").status, 404);
}

/// Minimal HTTP/1.0 GET used to exercise the real socket path.
std::string http_get(u16 port, const std::string& path) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return {};
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return {};
  }
  std::string req = "GET " + path + " HTTP/1.0\r\n\r\n";
  (void)!::send(fd, req.data(), req.size(), 0);
  std::string resp;
  char buf[4096];
  for (;;) {
    ssize_t got = ::recv(fd, buf, sizeof(buf), 0);
    if (got <= 0) break;
    resp.append(buf, static_cast<size_t>(got));
  }
  ::close(fd);
  return resp;
}

TEST(ObsServer, ServesOverARealSocket) {
  Registry::global().counter("vm.instr_retired");  // give /flat.json content
  ObsServer server;
  ASSERT_TRUE(server.start(0));  // ephemeral port
  ASSERT_TRUE(server.running());
  ASSERT_NE(server.port(), 0);

  std::string resp = http_get(server.port(), "/flat.json");
  EXPECT_EQ(resp.rfind("HTTP/1.0 200 OK", 0), 0u) << resp.substr(0, 64);
  EXPECT_NE(resp.find("Content-Type: application/json"), std::string::npos);
  EXPECT_NE(resp.find("vm.instr_retired"), std::string::npos);

  EXPECT_EQ(http_get(server.port(), "/missing").rfind("HTTP/1.0 404", 0), 0u);

  server.stop();
  EXPECT_FALSE(server.running());
}

TEST(ObsServer, StartIsIdempotentWhileRunning) {
  ObsServer server;
  ASSERT_TRUE(server.start(0));
  u16 port = server.port();
  EXPECT_TRUE(server.start(0));  // no-op: keeps the bound port
  EXPECT_EQ(server.port(), port);
  server.stop();
}

TEST(MaybeStartFromEnv, UnsetAndGarbageAreRejected) {
  ::unsetenv("CRP_OBS_SERVE");
  EXPECT_FALSE(maybe_start_from_env());
  ::setenv("CRP_OBS_SERVE", "not-a-port", 1);
  EXPECT_FALSE(maybe_start_from_env());
  ::setenv("CRP_OBS_SERVE", "99999999", 1);
  EXPECT_FALSE(maybe_start_from_env());
  ::unsetenv("CRP_OBS_SERVE");
}

}  // namespace
}  // namespace crp::obs::serve

// --- crpd: protocol + daemon -------------------------------------------------

namespace crp::serve {
namespace {

TEST(Protocol, LineBufferReassemblesFragments) {
  LineBuffer lb;
  lb.append("PI");
  std::string line;
  EXPECT_FALSE(lb.next(&line));
  lb.append("NG\r\nSTATS\nSUB");
  ASSERT_TRUE(lb.next(&line));
  EXPECT_EQ(line, "PING");  // "\r\n" stripped
  ASSERT_TRUE(lb.next(&line));
  EXPECT_EQ(line, "STATS");
  EXPECT_FALSE(lb.next(&line));
  EXPECT_EQ(lb.size(), 3u);  // partial "SUB" stays buffered
}

TEST(Protocol, KnobsParseAndRejectGarbage) {
  pipeline::JobSpec spec;
  std::string err;
  EXPECT_TRUE(apply_knob("seed=42", &spec, &err));
  EXPECT_TRUE(apply_knob("priority=-3", &spec, &err));
  EXPECT_TRUE(apply_knob("cache=0", &spec, &err));
  EXPECT_EQ(spec.seed, 42u);
  EXPECT_EQ(spec.priority, -3);
  EXPECT_FALSE(spec.opts.cache);
  EXPECT_FALSE(apply_knob("seed=banana", &spec, &err));
  EXPECT_FALSE(apply_knob("nonsense=1", &spec, &err));
  EXPECT_FALSE(apply_knob("naked", &spec, &err));

  EXPECT_TRUE(valid_tenant("alice_01-x"));
  EXPECT_FALSE(valid_tenant(""));
  EXPECT_FALSE(valid_tenant("has space"));
  EXPECT_FALSE(valid_tenant(std::string(65, 'a')));
}

/// Admission-only daemon (workers=0): jobs queue but never run, so quota
/// and rate decisions are deterministic.
struct AdmissionDaemon {
  pipeline::ArtifactStore store;
  Daemon daemon;
  explicit AdmissionDaemon(size_t max_active = 2, u64 window_max = 100)
      : daemon(make_opts(&store, max_active, window_max)) {
    EXPECT_TRUE(daemon.start());
  }
  static DaemonOptions make_opts(pipeline::ArtifactStore* st, size_t max_active,
                                 u64 window_max) {
    DaemonOptions o;
    o.workers = 0;
    o.tenant_max_active = max_active;
    o.admission_window_max = window_max;
    o.store = st;
    return o;
  }
};

TEST(Daemon, PingBadVerbAndUnknownIds) {
  AdmissionDaemon ad;
  Client c;
  ASSERT_TRUE(c.connect(ad.daemon.port()));
  std::string reply;
  ASSERT_TRUE(c.request("PING", &reply));
  EXPECT_EQ(reply, "PONG");
  ASSERT_TRUE(c.request("FROB x", &reply));
  EXPECT_EQ(Client::parse_reply(reply).code, 400);
  ASSERT_TRUE(c.request("STATUS 12345", &reply));
  EXPECT_EQ(Client::parse_reply(reply).code, 404);
  ASSERT_TRUE(c.request("FETCH 12345", &reply));
  EXPECT_EQ(Client::parse_reply(reply).code, 404);
  ASSERT_TRUE(c.request("SUBMIT alice no/such_target", &reply));
  EXPECT_EQ(Client::parse_reply(reply).code, 404);
  ASSERT_TRUE(c.request("SUBMIT bad..tenant! server/nginx_sim", &reply));
  EXPECT_EQ(Client::parse_reply(reply).code, 400);
}

TEST(Daemon, MalformedJobIdsAreRejectedNotTruncated) {
  AdmissionDaemon ad;
  Client c;
  ASSERT_TRUE(c.connect(ad.daemon.port()));
  u64 id = c.submit("alice", "server/nginx_sim");
  ASSERT_NE(id, 0u);
  std::string reply;
  // strtoull would truncate "7abc" to job 7; the strict parse must 400
  // every trailing-garbage id on every verb that takes one.
  for (const char* verb : {"STATUS", "WATCH", "FETCH", "CANCEL"}) {
    ASSERT_TRUE(c.request(strf("%s %lluabc", verb, (unsigned long long)id), &reply));
    EXPECT_EQ(Client::parse_reply(reply).code, 400) << verb;
    ASSERT_TRUE(c.request(strf("%s 0", verb), &reply));
    EXPECT_EQ(Client::parse_reply(reply).code, 400) << verb;
    ASSERT_TRUE(c.request(strf("%s 1 2", verb), &reply));
    EXPECT_EQ(Client::parse_reply(reply).code, 400) << verb;
  }
  ASSERT_TRUE(c.request(strf("STATUS %llu", (unsigned long long)id), &reply));
  EXPECT_TRUE(Client::parse_reply(reply).ok);
}

TEST(Daemon, TenantTrackingCapRejectsFreshNames) {
  pipeline::ArtifactStore store;
  DaemonOptions o;
  o.workers = 0;
  o.max_tracked_tenants = 2;
  o.store = &store;
  Daemon daemon(o);
  ASSERT_TRUE(daemon.start());
  Client c;
  ASSERT_TRUE(c.connect(daemon.port()));
  EXPECT_NE(c.submit("t1", "server/nginx_sim"), 0u);
  EXPECT_NE(c.submit("t2", "server/nginx_sim"), 0u);
  int code = 0;
  EXPECT_EQ(c.submit("t3", "server/nginx_sim", {}, &code), 0u);
  EXPECT_EQ(code, 429);  // cycling fresh names stops growing daemon state
  EXPECT_NE(c.submit("t1", "server/nginx_sim"), 0u);  // tracked names fine
}

TEST(Daemon, IdleTenantWindowsExpire) {
  pipeline::ArtifactStore store;
  DaemonOptions o;
  o.workers = 0;
  o.max_tracked_tenants = 2;
  o.admission_window_ns = 1;  // any later submission sees an idle window
  o.store = &store;
  Daemon daemon(o);
  ASSERT_TRUE(daemon.start());
  Client c;
  ASSERT_TRUE(c.connect(daemon.port()));
  // Five distinct tenants sail past a cap of 2 because each submission
  // expires the previous, now-idle windows instead of accumulating them.
  for (int i = 0; i < 5; ++i)
    EXPECT_NE(c.submit(strf("fresh%d", i), "server/nginx_sim"), 0u) << i;
}

TEST(Daemon, PerTenantQuotaRejectsWith429) {
  AdmissionDaemon ad(/*max_active=*/2);
  Client c;
  ASSERT_TRUE(c.connect(ad.daemon.port()));
  EXPECT_NE(c.submit("alice", "server/nginx_sim"), 0u);
  EXPECT_NE(c.submit("alice", "server/nginx_sim"), 0u);
  int code = 0;
  EXPECT_EQ(c.submit("alice", "server/nginx_sim", {}, &code), 0u);
  EXPECT_EQ(code, 429);
  // Quotas are per tenant: bob is unaffected by alice's backlog.
  EXPECT_NE(c.submit("bob", "server/nginx_sim"), 0u);
}

TEST(Daemon, SubmissionRateWindowRejectsWith429) {
  AdmissionDaemon ad(/*max_active=*/100, /*window_max=*/3);
  Client c;
  ASSERT_TRUE(c.connect(ad.daemon.port()));
  int code = 0;
  EXPECT_NE(c.submit("alice", "server/nginx_sim"), 0u);
  EXPECT_NE(c.submit("alice", "server/nginx_sim"), 0u);
  EXPECT_NE(c.submit("alice", "server/nginx_sim"), 0u);
  EXPECT_EQ(c.submit("alice", "server/nginx_sim", {}, &code), 0u);
  EXPECT_EQ(code, 429);
  // Rejected submissions consume window slots too: hammering stays rejected.
  EXPECT_EQ(c.submit("alice", "server/nginx_sim", {}, &code), 0u);
  EXPECT_EQ(code, 429);
}

TEST(Daemon, PipelinedSubmissionsAnswerInOrder) {
  AdmissionDaemon ad(/*max_active=*/100);
  Client c;
  ASSERT_TRUE(c.connect(ad.daemon.port()));
  // One write, four requests; replies must come back in request order.
  ASSERT_TRUE(c.send_line(
      "PING\nSUBMIT alice server/nginx_sim\nSUBMIT alice server/lighttpd_sim\nSTATS"));
  std::string line;
  ASSERT_TRUE(c.read_line(&line));
  EXPECT_EQ(line, "PONG");
  ASSERT_TRUE(c.read_line(&line));
  EXPECT_EQ(line, "OK 1");
  ASSERT_TRUE(c.read_line(&line));
  EXPECT_EQ(line, "OK 2");
  ASSERT_TRUE(c.read_line(&line));
  EXPECT_EQ(line.rfind("OK active=2", 0), 0u) << line;
}

TEST(Daemon, CancelQueuedJobAndFetchConflict) {
  AdmissionDaemon ad;
  Client c;
  ASSERT_TRUE(c.connect(ad.daemon.port()));
  u64 id = c.submit("alice", "server/nginx_sim");
  ASSERT_NE(id, 0u);
  std::string reply;
  ASSERT_TRUE(c.request(strf("FETCH %llu", (unsigned long long)id), &reply));
  EXPECT_EQ(Client::parse_reply(reply).code, 409);  // not finished
  ASSERT_TRUE(c.request(strf("CANCEL %llu", (unsigned long long)id), &reply));
  EXPECT_TRUE(Client::parse_reply(reply).ok);
  ASSERT_TRUE(c.request(strf("STATUS %llu", (unsigned long long)id), &reply));
  EXPECT_EQ(reply.find("OK cancelled"), 0u) << reply;
  ASSERT_TRUE(c.request(strf("FETCH %llu", (unsigned long long)id), &reply));
  EXPECT_EQ(Client::parse_reply(reply).code, 409);  // cancelled
}

TEST(Daemon, ServedReportIsByteIdenticalToBatch) {
  pipeline::TargetRegistry reg = pipeline::TargetRegistry::builtin();
  const pipeline::TargetSpec* nginx = reg.find("server/nginx_sim");
  ASSERT_NE(nginx, nullptr);
  pipeline::ArtifactStore batch_store;
  pipeline::Campaign campaign({}, &batch_store);
  std::string batch =
      pipeline::render_report(campaign.run_target(*nginx), /*cache_tag=*/false);

  pipeline::ArtifactStore store;
  DaemonOptions o;
  o.workers = 2;
  o.store = &store;
  Daemon daemon(o);
  ASSERT_TRUE(daemon.start());

  // Two tenants submit the same target; the second rides the first's lease
  // or cache entry, and both fetched reports match the batch bytes.
  Client a, b;
  ASSERT_TRUE(a.connect(daemon.port()));
  ASSERT_TRUE(b.connect(daemon.port()));
  std::string report_a, report_b, err;
  bool cached_a = false, cached_b = false;
  std::thread tb([&] {
    EXPECT_TRUE(b.run_job("bob", "server/nginx_sim", {}, &report_b, &cached_b, &err))
        << err;
  });
  std::string err_a;
  EXPECT_TRUE(a.run_job("alice", "server/nginx_sim", {}, &report_a, &cached_a, &err_a))
      << err_a;
  tb.join();
  EXPECT_EQ(report_a, batch);
  EXPECT_EQ(report_b, batch);
  EXPECT_EQ(store.misses(), 1u);  // one computation across both tenants
}

TEST(Daemon, MidRequestDisconnectLeavesDaemonServing) {
  AdmissionDaemon ad;
  // A client that dies mid-line: open, send a partial verb, vanish.
  {
    Client c;
    ASSERT_TRUE(c.connect(ad.daemon.port()));
    // No trailing "\n": the daemon is left holding a partial line.
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(ad.daemon.port());
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
    ASSERT_GT(::send(fd, "SUBMIT ali", 10, 0), 0);
    ::close(fd);
  }
  // A watcher that disconnects before its job finishes.
  {
    Client c;
    ASSERT_TRUE(c.connect(ad.daemon.port()));
    u64 id = c.submit("alice", "server/nginx_sim");
    ASSERT_NE(id, 0u);
    std::string reply;
    ASSERT_TRUE(c.request(strf("WATCH %llu", (unsigned long long)id), &reply));
    EXPECT_TRUE(Client::parse_reply(reply).ok);
    c.close();  // watcher gone; the daemon must drop the registration
  }
  Client c;
  ASSERT_TRUE(c.connect(ad.daemon.port()));
  std::string reply;
  ASSERT_TRUE(c.request("PING", &reply));
  EXPECT_EQ(reply, "PONG");
}

TEST(Daemon, SlowReaderDoesNotStallOtherClients) {
  AdmissionDaemon ad;
  Client slow;
  ASSERT_TRUE(slow.connect(ad.daemon.port()));
  // ~100k pipelined PINGs, none of the replies read yet: the daemon must
  // buffer ~600 KiB of PONGs without blocking its event loop.
  constexpr int kPings = 100'000;
  std::string burst;
  for (int i = 0; i < kPings; ++i) burst += "PING\n";
  ASSERT_TRUE(slow.send_line(burst.substr(0, burst.size() - 1)));

  // Meanwhile a second client gets answered promptly.
  Client fast;
  ASSERT_TRUE(fast.connect(ad.daemon.port()));
  std::string reply;
  ASSERT_TRUE(fast.request("PING", &reply));
  EXPECT_EQ(reply, "PONG");

  // The slow reader eventually drains every buffered PONG, in order.
  for (int i = 0; i < kPings; ++i) {
    ASSERT_TRUE(slow.read_line(&reply)) << "at reply " << i;
    ASSERT_EQ(reply, "PONG");
  }
}

TEST(Daemon, ConcurrentClientSwarmSharesOneComputation) {
  pipeline::ArtifactStore store;
  DaemonOptions o;
  o.workers = 4;
  o.tenant_max_active = 1000;
  o.admission_window_max = 100'000;
  o.store = &store;
  Daemon daemon(o);
  ASSERT_TRUE(daemon.start());

  constexpr int kClients = 32;
  std::atomic<int> failures{0};
  std::vector<std::string> reports(kClients);
  std::vector<std::thread> threads;
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([&, i] {
      Client c;
      std::string err;
      if (!c.connect(daemon.port(), &err) ||
          !c.run_job(strf("tenant%d", i % 4), "server/nginx_sim", {}, &reports[i],
                     nullptr, &err)) {
        ADD_FAILURE() << "client " << i << ": " << err;
        failures.fetch_add(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  ASSERT_EQ(failures.load(), 0);
  for (int i = 1; i < kClients; ++i) EXPECT_EQ(reports[i], reports[0]);
  EXPECT_EQ(store.misses(), 1u);
  EXPECT_GE(store.hits(), static_cast<u64>(kClients - 1));
}

TEST(Daemon, StatsReportsDepthRetainedAndWatchdog) {
  AdmissionDaemon ad(/*max_active=*/10);
  Client c;
  ASSERT_TRUE(c.connect(ad.daemon.port()));
  ASSERT_NE(c.submit("alice", "server/nginx_sim"), 0u);
  ASSERT_NE(c.submit("alice", "server/nginx_sim"), 0u);
  ASSERT_NE(c.submit("bob", "server/nginx_sim", {"priority=5"}), 0u);
  std::string reply;
  ASSERT_TRUE(c.request("STATS", &reply));
  // The PR-8 prefix is a pinned byte contract; the new fields append.
  EXPECT_EQ(reply.rfind("OK active=3", 0), 0u) << reply;
  // Queue depth splits by priority in dispatch order (workers=0: all queued).
  EXPECT_NE(reply.find(" depth=p5:1,p0:2"), std::string::npos) << reply;
  EXPECT_NE(reply.find(" retained=0"), std::string::npos) << reply;
  EXPECT_NE(reply.find(" watchdog="), std::string::npos) << reply;
}

TEST(Daemon, TracedJobEchoesTraceOnEveryReply) {
  pipeline::ArtifactStore store;
  DaemonOptions o;
  o.workers = 2;
  o.store = &store;
  Daemon daemon(o);
  ASSERT_TRUE(daemon.start());
  Client c;
  ASSERT_TRUE(c.connect(daemon.port()));
  std::string reply;
  ASSERT_TRUE(c.request("SUBMIT alice server/nginx_sim trace=777", &reply));
  ASSERT_EQ(reply, "OK 1");  // SUBMIT stays the pinned byte format
  ASSERT_TRUE(c.request("WATCH 1", &reply));
  ASSERT_TRUE(Client::parse_reply(reply).ok);
  std::string line;
  for (;;) {
    ASSERT_TRUE(c.read_line(&line));
    EXPECT_NE(line.find(" trace=777"), std::string::npos) << line;
    if (line.rfind("DONE ", 0) == 0) break;
    ASSERT_EQ(line.rfind("EVENT ", 0), 0u) << line;
  }
  ASSERT_TRUE(c.request("STATUS 1", &reply));
  EXPECT_NE(reply.find(" trace=777"), std::string::npos) << reply;
  ASSERT_TRUE(c.send_line("FETCH 1"));
  ASSERT_TRUE(c.read_line(&reply));
  unsigned long long nbytes = 0;
  ASSERT_EQ(std::sscanf(reply.c_str(), "REPORT %llu", &nbytes), 1) << reply;
  EXPECT_NE(reply.find(" trace=777"), std::string::npos) << reply;
  std::string body;
  ASSERT_TRUE(c.read_payload(nbytes, &body));
  EXPECT_FALSE(body.empty());

  // Without the knob the daemon assigns its own id — every served job is
  // traceable — and the allocator never hands out a pinned id again.
  ASSERT_TRUE(c.request("SUBMIT alice server/nginx_sim seed=9", &reply));
  ASSERT_EQ(reply, "OK 2");
  ASSERT_TRUE(c.request("STATUS 2", &reply));
  EXPECT_NE(reply.find(" trace="), std::string::npos) << reply;
  EXPECT_EQ(reply.find(" trace=777"), std::string::npos) << reply;
}

TEST(Daemon, JobsAndTenantsRoutesLiveAndDieWithTheDaemon) {
  pipeline::ArtifactStore store;
  DaemonOptions o;
  o.workers = 2;
  o.store = &store;
  {
    Daemon daemon(o);
    ASSERT_TRUE(daemon.start());
    Client c;
    ASSERT_TRUE(c.connect(daemon.port()));
    std::string report, err;
    ASSERT_TRUE(c.run_job("alice", "server/nginx_sim", {}, &report, nullptr, &err))
        << err;
    obs::serve::Response jobs = obs::serve::respond("/jobs.json");
    ASSERT_EQ(jobs.status, 200);
    EXPECT_EQ(jobs.content_type, "application/json");
    EXPECT_NE(jobs.body.find("\"jobs\""), std::string::npos);
    EXPECT_NE(jobs.body.find("\"tenant\": \"alice\""), std::string::npos);
    EXPECT_NE(jobs.body.find("\"state\": \"done\""), std::string::npos);
    obs::serve::Response tenants = obs::serve::respond("/tenants.json");
    ASSERT_EQ(tenants.status, 200);
    EXPECT_NE(tenants.body.find("\"name\": \"alice\""), std::string::npos);
    EXPECT_NE(tenants.body.find("\"watchdog\""), std::string::npos);
    EXPECT_NE(tenants.body.find("\"queue_ms\""), std::string::npos);
    daemon.stop();
  }
  // Routes die with the daemon: no dangling provider over dead state.
  EXPECT_EQ(obs::serve::respond("/jobs.json").status, 404);
  EXPECT_EQ(obs::serve::respond("/tenants.json").status, 404);
}

TEST(Daemon, WatchdogTickFlagsPlantedStallExactlyOnce) {
  pipeline::ArtifactStore store;
  DaemonOptions o;
  o.workers = 0;
  o.store = &store;
  o.watchdog_step_deadline_ns = 1;  // any in-progress step is "stuck"
  o.tick_ms = 10;
  Daemon daemon(o);
  obs::JobTracer& jt = obs::JobTracer::global();
  jt.clear();
  ASSERT_TRUE(daemon.start());
  // Plant a job stuck mid-step; the daemon's own tick thread must flag it
  // within a deadline period — exactly once, repeated scans stay quiet.
  jt.job_started(999, 7, "alice", "server/nginx_sim");
  jt.step_begin(999, "syscall_scan");
  for (int i = 0; i < 400 && jt.watchdog_flags() == 0; ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_EQ(jt.watchdog_flags(), 1u);
  std::this_thread::sleep_for(std::chrono::milliseconds(30));  // more ticks
  EXPECT_EQ(jt.watchdog_flags(), 1u);
  Client c;
  ASSERT_TRUE(c.connect(daemon.port()));
  std::string reply;
  ASSERT_TRUE(c.request("STATS", &reply));
  EXPECT_NE(reply.find(" watchdog=1"), std::string::npos) << reply;
  jt.job_finished(999);
  jt.clear();
}

TEST(SocketServer, OverflowingOutBufferDropsConnAndCounts) {
  SocketServer::Options so;
  so.max_out_buffer = 64;
  SocketServer server(so);
  SocketServer::Handlers h;
  SocketServer* srv = &server;
  h.on_data = [srv](ConnId conn, std::string_view) {
    srv->send(conn, std::string(1024, 'x'));  // far past the 64-byte cap
  };
  ASSERT_TRUE(server.start(0, std::move(h)));
  Client c;
  ASSERT_TRUE(c.connect(server.port()));
  ASSERT_TRUE(c.send_line("hi"));
  // The oversized reply must drop the connection and count it, never
  // buffer without bound.
  for (int i = 0; i < 400 && server.stats().dropped_overflow == 0; ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  SocketServer::Stats st = server.stats();
  EXPECT_EQ(st.dropped_overflow, 1u);
  EXPECT_GE(st.accepted, 1u);
  EXPECT_GE(st.out_buffer_hwm, 1024u);
  server.stop();
}

}  // namespace
}  // namespace crp::serve
