// crp::obs::serve — routing of the live-telemetry endpoint and one real
// socket round-trip against an ephemeral port.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdlib>
#include <string>

#include "obs/expo.h"
#include "obs/obs.h"
#include "obs/prof.h"
#include "obs/serve.h"

namespace crp::obs::serve {
namespace {

TEST(Respond, IndexListsEveryRoute) {
  Response r = respond("/");
  EXPECT_EQ(r.status, 200);
  for (const char* route : {"/metrics", "/metrics.json", "/flat.json",
                            "/ledger.json", "/prof.json", "/prof.folded"})
    EXPECT_NE(r.body.find(route), std::string::npos) << route;
}

TEST(Respond, MetricsCarriesRegistryCounters) {
  Registry::global().counter("vm.instr_retired");  // ensure it exists
  Response r = respond("/metrics");
  EXPECT_EQ(r.status, 200);
  EXPECT_NE(r.body.find("crp_vm_instr_retired"), std::string::npos);
}

TEST(Respond, FlatJsonIsBenchParseable) {
  Registry::global().counter("vm.instr_retired");
  Response r = respond("/flat.json");
  ASSERT_EQ(r.status, 200);
  EXPECT_EQ(r.content_type, "application/json");
  // crptop wraps /flat.json in the BENCH envelope and reuses the bench
  // parser; this is the contract that keeps the two in sync.
  expo::BenchDoc doc;
  std::string wrapped =
      "{\n\"bench\": \"live\",\n\"schema\": 1,\n\"metrics\": " + r.body + "\n}\n";
  ASSERT_TRUE(expo::parse_bench_json(wrapped, &doc));
  EXPECT_TRUE(doc.has("vm.instr_retired"));
}

TEST(Respond, LedgerAndProfRoutesAreWellFormed) {
  Response ledger = respond("/ledger.json");
  EXPECT_EQ(ledger.status, 200);
  EXPECT_NE(ledger.body.find("\"stages\""), std::string::npos);
  EXPECT_NE(ledger.body.find("\"events\""), std::string::npos);

  Response prof = respond("/prof.json");
  EXPECT_EQ(prof.status, 200);
  EXPECT_NE(prof.body.find("\"hot_blocks\""), std::string::npos);

  EXPECT_EQ(respond("/prof.folded").status, 200);
}

TEST(Respond, UnknownPathIs404) {
  EXPECT_EQ(respond("/nope").status, 404);
  EXPECT_EQ(respond("").status, 404);
}

/// Minimal HTTP/1.0 GET used to exercise the real socket path.
std::string http_get(u16 port, const std::string& path) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return {};
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return {};
  }
  std::string req = "GET " + path + " HTTP/1.0\r\n\r\n";
  (void)!::send(fd, req.data(), req.size(), 0);
  std::string resp;
  char buf[4096];
  for (;;) {
    ssize_t got = ::recv(fd, buf, sizeof(buf), 0);
    if (got <= 0) break;
    resp.append(buf, static_cast<size_t>(got));
  }
  ::close(fd);
  return resp;
}

TEST(ObsServer, ServesOverARealSocket) {
  Registry::global().counter("vm.instr_retired");  // give /flat.json content
  ObsServer server;
  ASSERT_TRUE(server.start(0));  // ephemeral port
  ASSERT_TRUE(server.running());
  ASSERT_NE(server.port(), 0);

  std::string resp = http_get(server.port(), "/flat.json");
  EXPECT_EQ(resp.rfind("HTTP/1.0 200 OK", 0), 0u) << resp.substr(0, 64);
  EXPECT_NE(resp.find("Content-Type: application/json"), std::string::npos);
  EXPECT_NE(resp.find("vm.instr_retired"), std::string::npos);

  EXPECT_EQ(http_get(server.port(), "/missing").rfind("HTTP/1.0 404", 0), 0u);

  server.stop();
  EXPECT_FALSE(server.running());
}

TEST(ObsServer, StartIsIdempotentWhileRunning) {
  ObsServer server;
  ASSERT_TRUE(server.start(0));
  u16 port = server.port();
  EXPECT_TRUE(server.start(0));  // no-op: keeps the bound port
  EXPECT_EQ(server.port(), port);
  server.stop();
}

TEST(MaybeStartFromEnv, UnsetAndGarbageAreRejected) {
  ::unsetenv("CRP_OBS_SERVE");
  EXPECT_FALSE(maybe_start_from_env());
  ::setenv("CRP_OBS_SERVE", "not-a-port", 1);
  EXPECT_FALSE(maybe_start_from_env());
  ::setenv("CRP_OBS_SERVE", "99999999", 1);
  EXPECT_FALSE(maybe_start_from_env());
  ::unsetenv("CRP_OBS_SERVE");
}

}  // namespace
}  // namespace crp::obs::serve
