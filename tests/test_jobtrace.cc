// crp::obs::JobTracer — the end-to-end job-trace layer: span determinism
// across worker counts, the live-job table and stall watchdog, per-job
// span budgets, and the JSON exports the daemon serves.

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "obs/trace.h"
#include "pipeline/artifact_store.h"
#include "pipeline/job_queue.h"
#include "pipeline/registry.h"

namespace crp::obs {
namespace {

using pipeline::ArtifactStore;
using pipeline::JobQueue;
using pipeline::JobQueueOptions;
using pipeline::JobSpec;
using pipeline::JobState;

/// Scoped arm/clear so every test leaves the global tracer as the batch
/// paths expect it: disarmed and empty.
struct ArmedTracer {
  JobTracer& jt = JobTracer::global();
  ArmedTracer() {
    jt.clear();
    jt.set_armed(true);
  }
  ~ArmedTracer() {
    jt.set_armed(false);
    jt.clear();
  }
};

/// Span identity for determinism diffs: kind, label *name* (ids are
/// first-come), arg — per job, in drained (seq) order. Timestamps are
/// explicitly excluded; they are the only nondeterministic field.
using SpanId = std::tuple<std::string, std::string, u64>;

std::vector<SpanId> span_ids(JobTracer& jt, u64 trace) {
  std::vector<SpanId> out;
  for (const JobSpan& s : jt.spans_for(trace))
    out.emplace_back(span_kind_name(s.kind), jt.name_of(s.label), s.arg);
  return out;
}

/// Drive one traced discovery job to completion at `workers` and return
/// its span identities. Fresh store + queue per run so the cache state a
/// job observes is identical across runs.
std::vector<SpanId> run_once(int workers) {
  JobTracer& jt = JobTracer::global();
  jt.clear();
  pipeline::TargetRegistry reg = pipeline::TargetRegistry::builtin();
  const pipeline::TargetSpec* target = reg.find("server/nginx_sim");
  EXPECT_NE(target, nullptr);
  ArtifactStore store;
  JobQueueOptions qo;
  qo.workers = workers;
  qo.store = &store;
  JobQueue queue(qo);
  JobSpec spec;
  spec.target = *target;
  spec.seed = 7;
  spec.tenant = "alice";
  spec.trace = jt.start_trace();
  pipeline::JobId id = queue.submit(spec);
  pipeline::JobResult r = queue.wait(id);
  EXPECT_EQ(r.state, JobState::kDone);
  return span_ids(jt, spec.trace);
}

TEST(JobTracer, SpanSetIsIdenticalAcrossWorkerCounts) {
  ArmedTracer armed;
  std::vector<SpanId> inline_run = run_once(0);
  std::vector<SpanId> one = run_once(1);
  std::vector<SpanId> four = run_once(4);
  ASSERT_FALSE(one.empty());
  EXPECT_EQ(inline_run, one);
  EXPECT_EQ(one, four);

  // The lifecycle edges the tentpole promises are all present: queue wait,
  // every step, and the store lease the first computation wins.
  bool saw_queue = false, saw_step = false, saw_lease = false;
  for (const auto& [kind, label, arg] : one) {
    saw_queue |= kind == std::string("queue_wait");
    saw_step |= kind == std::string("step");
    saw_lease |= kind == std::string("lease_acquire");
  }
  EXPECT_TRUE(saw_queue);
  EXPECT_TRUE(saw_step);
  EXPECT_TRUE(saw_lease);
}

TEST(JobTracer, DisarmedOrUntracedRecordsNothing) {
  JobTracer& jt = JobTracer::global();
  jt.clear();
  // Disarmed: the batch configuration. Nothing lands.
  jt.record(1, 1, SpanKind::kStep, 0, 0, 0, 1);
  EXPECT_TRUE(jt.snapshot().empty());
  // Armed but trace 0: an untraced job in an armed daemon. Still nothing.
  ArmedTracer armed;
  jt.record(0, 1, SpanKind::kStep, 0, 0, 0, 1);
  EXPECT_TRUE(jt.snapshot().empty());
}

TEST(JobTracer, StartTraceNeverCollidesWithPinnedIds) {
  ArmedTracer armed;
  JobTracer& jt = JobTracer::global();
  u64 pinned = jt.start_trace(777);
  EXPECT_EQ(pinned, 777u);
  for (int i = 0; i < 1000; ++i) EXPECT_NE(jt.start_trace(), 777u);
}

TEST(JobTracer, WatchdogFlagsSlowStepExactlyOnce) {
  ArmedTracer armed;
  JobTracer& jt = JobTracer::global();
  jt.job_started(101, 42, "alice", "server/nginx_sim");
  jt.step_begin(101, "syscall_scan");
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  // 1 ns deadline: the in-progress step is over it. Exactly one new flag,
  // and a rescan flags nothing new.
  EXPECT_EQ(jt.watchdog_scan(/*step=*/1, /*lease=*/u64{1} << 62), 1u);
  EXPECT_EQ(jt.watchdog_scan(1, u64{1} << 62), 0u);
  EXPECT_EQ(jt.watchdog_flags(), 1u);
  // A finished step is no longer stall-checked; a fresh one can flag again
  // on the *lease* axis but the step axis stays once-per-job.
  jt.step_end(101);
  EXPECT_EQ(jt.watchdog_scan(1, u64{1} << 62), 0u);
  jt.job_finished(101);
  EXPECT_TRUE(jt.live_jobs().empty());
}

TEST(JobTracer, WatchdogFlagsHeldLeaseButNeverParkedJobs) {
  ArmedTracer armed;
  JobTracer& jt = JobTracer::global();
  jt.job_started(201, 1, "bob", "server/nginx_sim");
  jt.lease_begin(201, 0xabcd, "syscall_scan");
  jt.job_started(202, 2, "carol", "server/nginx_sim");
  jt.job_parked(202);  // parked jobs are legitimately idle
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  EXPECT_EQ(jt.watchdog_scan(u64{1} << 62, /*lease=*/1), 1u);
  EXPECT_EQ(jt.watchdog_scan(u64{1} << 62, 1), 0u);
  std::vector<JobTracer::LiveJob> live = jt.live_jobs();
  ASSERT_EQ(live.size(), 2u);
  for (const JobTracer::LiveJob& lj : live) {
    if (lj.trace == 201) EXPECT_TRUE(lj.lease_flagged);
    if (lj.trace == 202) {
      EXPECT_TRUE(lj.parked);
      EXPECT_FALSE(lj.lease_flagged);
      EXPECT_FALSE(lj.step_flagged);
    }
  }
  // Releasing the lease ends the exposure.
  jt.lease_end(201);
  EXPECT_EQ(jt.watchdog_scan(u64{1} << 62, 1), 0u);
}

TEST(JobTracer, PerJobSpanBudgetDropsAndCounts) {
  ArmedTracer armed;
  JobTracer& jt = JobTracer::global();
  const size_t budget = JobTracer::kMaxSpansPerJob;
  for (size_t i = 0; i < budget + 10; ++i)
    jt.record(5, 9, SpanKind::kStep, 0, i, i, i + 1);
  std::vector<JobTracer::JobTraceView> lanes = jt.snapshot();
  ASSERT_EQ(lanes.size(), 1u);
  EXPECT_EQ(lanes[0].spans.size(), budget);
  EXPECT_GE(jt.dropped(), 10u);
  // The budget keeps the prefix: args 0..budget-1 in order, seq renumbered.
  for (size_t i = 0; i < budget; ++i) {
    EXPECT_EQ(lanes[0].spans[i].arg, i);
    EXPECT_EQ(lanes[0].spans[i].seq, i);
  }
}

TEST(JobTracer, JsonExportsAreWellFormed) {
  ArmedTracer armed;
  JobTracer& jt = JobTracer::global();
  u32 label = jt.intern("syscall_scan");
  jt.record(3, 1, SpanKind::kQueueWait, 0, 0, 100, 200);
  jt.record(3, 1, SpanKind::kStep, label, 0, 200, 300);
  std::string traces = jt.traces_json();
  EXPECT_NE(traces.find("\"traces\""), std::string::npos);
  EXPECT_NE(traces.find("\"trace\": 3"), std::string::npos);
  EXPECT_NE(traces.find("\"queue_wait\""), std::string::npos);
  EXPECT_NE(traces.find("\"syscall_scan\""), std::string::npos);
  std::string chrome = jt.chrome_trace_json();
  EXPECT_EQ(chrome.front(), '[');
  EXPECT_NE(chrome.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(chrome.find("step:syscall_scan"), std::string::npos);
}

TEST(ScopedTraceJobTest, InstallsAndRestoresContext) {
  EXPECT_EQ(current_trace_job().trace, 0u);
  {
    ScopedTraceJob outer(11, 1);
    EXPECT_EQ(current_trace_job().trace, 11u);
    EXPECT_EQ(current_trace_job().job, 1u);
    {
      ScopedTraceJob inner(22, 2);
      EXPECT_EQ(current_trace_job().trace, 22u);
    }
    EXPECT_EQ(current_trace_job().trace, 11u);
  }
  EXPECT_EQ(current_trace_job().trace, 0u);
}

}  // namespace
}  // namespace crp::obs
