// crp::exec thread pool: worker-count resolution, per-task seeding, and the
// determinism contract (input-order merge, job-count independence). The
// hammer tests double as the TSan workload for the pool (see ci.yml).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <map>
#include <numeric>
#include <thread>

#include "exec/thread_pool.h"
#include "obs/journal.h"
#include "obs/obs.h"

namespace crp::exec {
namespace {

TEST(ResolveJobs, ExplicitArgumentWins) {
  ::setenv("CRP_JOBS", "7", 1);
  EXPECT_EQ(resolve_jobs(3), 3);
  ::unsetenv("CRP_JOBS");
}

TEST(ResolveJobs, EnvOverridesHardware) {
  ::setenv("CRP_JOBS", "5", 1);
  EXPECT_EQ(resolve_jobs(), 5);
  ::setenv("CRP_JOBS", "0", 1);  // non-positive env values fall through
  EXPECT_GE(resolve_jobs(), 1);
  ::setenv("CRP_JOBS", "garbage", 1);
  EXPECT_GE(resolve_jobs(), 1);
  ::unsetenv("CRP_JOBS");
}

TEST(ResolveJobs, DefaultsToAtLeastOne) {
  ::unsetenv("CRP_JOBS");
  EXPECT_GE(resolve_jobs(), 1);
}

TEST(TaskSeed, DeterministicAndIndexSensitive) {
  EXPECT_EQ(task_seed(0x1234, 7), task_seed(0x1234, 7));
  EXPECT_NE(task_seed(0x1234, 7), task_seed(0x1234, 8));
  EXPECT_NE(task_seed(0x1234, 7), task_seed(0x1235, 7));
  // Index 0 must not collapse onto the base seed.
  EXPECT_NE(task_seed(0x1234, 0), 0x1234ull);
}

TEST(ThreadPool, SerialPoolRunsOnCaller) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.jobs(), 1);
  std::thread::id caller = std::this_thread::get_id();
  std::atomic<int> off_thread{0};
  pool.for_each_index(64, [&](u64) {
    if (std::this_thread::get_id() != caller) off_thread.fetch_add(1);
  });
  EXPECT_EQ(off_thread.load(), 0);
}

TEST(ThreadPool, EmptyBatchIsNoop) {
  ThreadPool pool(4);
  int calls = 0;
  pool.for_each_index(0, [&](u64) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ThreadPool, EveryIndexRunsExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(501);
  pool.for_each_index(hits.size(), [&](u64 i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < hits.size(); ++i) EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ThreadPool, TasksMetricCounts) {
  obs::Counter& c = obs::Registry::global().counter("analysis.pool.tasks");
  u64 before = c.value();
  ThreadPool pool(2);
  pool.for_each_index(37, [](u64) {});
  EXPECT_EQ(c.value(), before + 37);
}

TEST(ParallelMap, InputOrderPreserved) {
  ThreadPool pool(4);
  std::vector<int> items(200);
  std::iota(items.begin(), items.end(), 0);
  auto out = parallel_map(pool, items, [](size_t i, const int& v) {
    return static_cast<int>(i) * 1000 + v;
  });
  ASSERT_EQ(out.size(), items.size());
  for (size_t i = 0; i < out.size(); ++i)
    EXPECT_EQ(out[i], static_cast<int>(i) * 1000 + items[i]);
}

TEST(ParallelMap, JobCountDoesNotChangeResults) {
  std::vector<u64> items(300);
  std::iota(items.begin(), items.end(), 11);
  auto run = [&](int jobs) {
    ThreadPool pool(jobs);
    return parallel_map(pool, items, [](size_t i, const u64& v) {
      // Task-index seeding: identical streams regardless of which thread
      // runs the task.
      return task_seed(v, i);
    });
  };
  auto serial = run(1);
  EXPECT_EQ(serial, run(2));
  EXPECT_EQ(serial, run(4));
  EXPECT_EQ(serial, run(9));
}

TEST(ThreadPool, ReusedAcrossManySmallBatches) {
  // Regression for batch-reuse races: a worker looping back for one more
  // claim must never observe the next batch's cursor. Many tiny batches
  // back-to-back maximize the window.
  ThreadPool pool(4);
  for (int round = 0; round < 200; ++round) {
    std::atomic<u64> sum{0};
    u64 n = 1 + static_cast<u64>(round % 7);
    pool.for_each_index(n, [&](u64 i) { sum.fetch_add(i + 1); });
    EXPECT_EQ(sum.load(), n * (n + 1) / 2) << "round " << round;
  }
}

TEST(ThreadPool, JournalLanesFollowTaskIdsNotThreads) {
  // Chrome-trace determinism: a task's spans land on lane 1 + task % 16 at
  // ANY job count, so traces from different runs nest and diff identically.
  auto lanes_for = [](int jobs) {
    obs::Journal& j = obs::Journal::global();
    j.clear();
    ThreadPool pool(jobs);
    pool.for_each_index(40, [](u64) {}, "lane-test");
    std::map<i64, u32> task_to_tid;
    for (const obs::TraceEvent& e : j.events())
      if (e.name == "lane-test") task_to_tid[e.arg] = e.tid;
    j.clear();
    return task_to_tid;
  };
  std::map<i64, u32> serial = lanes_for(1);
  ASSERT_EQ(serial.size(), 40u);
  for (const auto& [task, tid] : serial)
    EXPECT_EQ(tid, 1u + static_cast<u32>(task) % obs::kJournalTaskLanes);
  EXPECT_EQ(serial, lanes_for(4));
  EXPECT_EQ(serial, lanes_for(8));
}

TEST(ThreadPool, NestedEventsAdoptTheTaskLane) {
  // An event emitted with tid == 0 from inside a task (e.g. an oracle probe
  // span) inherits the task's lane instead of collapsing onto lane 0.
  obs::Journal& j = obs::Journal::global();
  j.clear();
  ThreadPool pool(4);
  pool.for_each_index(8, [&](u64) {
    j.instant("nested", "test", 0);  // tid defaulted to 0
  });
  for (const obs::TraceEvent& e : j.events())
    if (e.name == "nested") {
      EXPECT_GE(e.tid, 1u);
      EXPECT_LE(e.tid, obs::kJournalTaskLanes);
    }
  j.clear();
}

TEST(ThreadPool, ConcurrentMetricHammer) {
  // TSan workload: tasks hammer shared observability sinks from every worker.
  obs::Counter& c = obs::Registry::global().counter("test.exec.hammer");
  obs::Histogram& h = obs::Registry::global().histogram("test.exec.hammer_ns");
  u64 before = c.value();
  ThreadPool pool(8);
  pool.for_each_index(2000, [&](u64 i) {
    c.inc();
    h.record(i % 97);
  });
  EXPECT_EQ(c.value(), before + 2000);
}

}  // namespace
}  // namespace crp::exec
