#include <gtest/gtest.h>

#include <memory>

#include "analysis/api_analysis.h"
#include "analysis/report.h"
#include "analysis/seh_analysis.h"
#include "analysis/veh_scanner.h"
#include "isa/assembler.h"
#include "os/kernel.h"
#include "trace/tracer.h"

namespace crp::analysis {
namespace {

using isa::Assembler;
using isa::Cond;
using isa::Reg;

constexpr i64 kAv = static_cast<i64>(0xC0000005);

isa::Image mixed_handlers_image(const std::string& name = "libmixed") {
  Assembler a(name);
  a.set_dll(true);
  a.label("fn");
  a.label("g1_b");
  a.nop();
  a.label("g1_e");
  a.label("g2_b");
  a.nop();
  a.label("g2_e");
  a.label("g3_b");
  a.nop();
  a.label("g3_e");
  a.ret();
  a.export_fn("fn", "fn");
  a.label("h");
  a.ret();
  // Filter 1: AV-only (accepts).
  a.label("f_av");
  a.cmpi(Reg::R1, kAv);
  a.jcc(Cond::kEq, "f_av_y");
  a.movi(Reg::R0, 0);
  a.ret();
  a.label("f_av_y");
  a.movi(Reg::R0, 1);
  a.ret();
  // Filter 2: divide-by-zero only (rejects AV).
  a.label("f_div");
  a.cmpi(Reg::R1, static_cast<i64>(0xC0000094));
  a.jcc(Cond::kEq, "f_div_y");
  a.movi(Reg::R0, 0);
  a.ret();
  a.label("f_div_y");
  a.movi(Reg::R0, 1);
  a.ret();
  a.scope("g1_b", "g1_e", "f_av", "h");
  a.scope("g2_b", "g2_e", "f_div", "h");
  a.scope("g3_b", "g3_e", "", "h");  // catch-all
  return a.build();
}

TEST(SehExtractor, ParsesScopeTablesFromBytes) {
  SehExtractor ex;
  auto bytes = isa::write_image(mixed_handlers_image());
  ASSERT_TRUE(ex.add_image_bytes(bytes));
  EXPECT_EQ(ex.handlers().size(), 3u);
  EXPECT_EQ(ex.unique_filters().size(), 2u);  // catch-all is not a function
  EXPECT_EQ(ex.handlers_in("libmixed").size(), 3u);
  EXPECT_TRUE(ex.handlers_in("nosuch").empty());
  int catch_all = 0;
  for (const auto& h : ex.handlers()) catch_all += h.catch_all ? 1 : 0;
  EXPECT_EQ(catch_all, 1);
}

TEST(SehExtractor, RejectsGarbageBytes) {
  SehExtractor ex;
  std::vector<u8> junk(100, 0x5a);
  EXPECT_FALSE(ex.add_image_bytes(junk));
  EXPECT_TRUE(ex.handlers().empty());
}

TEST(FilterClassifier, ClassifiesMixedPopulation) {
  SehExtractor ex;
  ex.add_image(std::make_shared<isa::Image>(mixed_handlers_image()));
  FilterClassifier fc;
  auto filters = fc.classify_all(ex);
  // 2 real filters + 1 synthetic catch-all row.
  ASSERT_EQ(filters.size(), 3u);
  int accepts = 0, rejects = 0;
  for (const auto& f : filters) {
    if (f.offset == isa::kFilterCatchAll) {
      EXPECT_EQ(f.verdict, FilterVerdict::kAcceptsAv);
      continue;
    }
    if (f.verdict == FilterVerdict::kAcceptsAv) ++accepts;
    if (f.verdict == FilterVerdict::kRejectsAv) ++rejects;
  }
  EXPECT_EQ(accepts, 1);
  EXPECT_EQ(rejects, 1);
  EXPECT_GE(fc.filters_executed(), 2u);
}

TEST(CoverageXref, StaticOnlyCounts) {
  SehExtractor ex;
  ex.add_image(std::make_shared<isa::Image>(mixed_handlers_image()));
  FilterClassifier fc;
  auto filters = fc.classify_all(ex);
  auto stats = CoverageXref::compute(ex, filters, nullptr, nullptr);
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].module, "libmixed");
  EXPECT_EQ(stats[0].guarded_total, 3u);
  EXPECT_EQ(stats[0].guarded_av_capable, 2u);  // AV filter + catch-all
  EXPECT_EQ(stats[0].guarded_on_path, 0u);     // no tracer
  EXPECT_EQ(stats[0].filters_total, 2u);
  EXPECT_EQ(stats[0].filters_av_capable, 1u);
}

TEST(CoverageXref, DynamicOnPath) {
  // Execute only the fn containing the guards; all three guarded regions run.
  auto img = std::make_shared<isa::Image>(mixed_handlers_image());
  os::Kernel k;
  int pid = k.create_process("host", vm::Personality::kWindows, 9);
  k.proc(pid).load(img);
  // Host app calling libmixed!fn... build a tiny app.
  Assembler app("app");
  app.label("e");
  app.call_import("libmixed", "fn");
  app.halt();
  app.set_entry("e");
  k.proc(pid).load(std::make_shared<isa::Image>(app.build()));
  k.start_process(pid);
  trace::Tracer tracer(k, k.proc(pid));
  k.run(10000);

  SehExtractor ex;
  ex.add_image(img);
  FilterClassifier fc;
  auto filters = fc.classify_all(ex);
  auto stats = CoverageXref::compute(ex, filters, &tracer, &k.proc(pid));
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].guarded_on_path, 2u);  // both AV-capable guards executed
  EXPECT_GT(stats[0].trigger_events, 0u);

  auto cands = CoverageXref::candidates(ex, filters, &tracer, &k.proc(pid), "app");
  EXPECT_EQ(cands.size(), 2u);
  for (const auto& c : cands) EXPECT_EQ(c.cls, PrimitiveClass::kExceptionHandler);
}

/// Same guarded region + filter in every module, but the filter's verdict is
/// gated on a static config word reached through lea_pc — filters with equal
/// code and *different* referenced data must hash (and classify) differently.
isa::Image gated_filter_image(const std::string& name, u64 cfg_value) {
  Assembler a(name);
  a.set_dll(true);
  a.label("g_b");
  a.nop();
  a.label("g_e");
  a.ret();
  a.label("h");
  a.ret();
  a.label("f");
  a.lea_pc(Reg::R2, "cfg");
  a.load(Reg::R3, Reg::R2, 8);
  a.cmpi(Reg::R3, 0);
  a.jcc(Cond::kEq, "f_no");
  a.cmpi(Reg::R1, kAv);
  a.jcc(Cond::kEq, "f_yes");
  a.label("f_no");
  a.movi(Reg::R0, 0);
  a.ret();
  a.label("f_yes");
  a.movi(Reg::R0, 1);
  a.ret();
  a.scope("g_b", "g_e", "f", "h");
  a.data_u64("cfg", cfg_value);
  return a.build();
}

u64 only_filter_hash(const isa::Image& img) {
  SehExtractor ex;
  ex.add_image(std::make_shared<isa::Image>(img));
  auto uf = ex.unique_filters();
  EXPECT_EQ(uf.size(), 1u);
  return filter_body_hash(img, uf[0].second);
}

TEST(FilterBodyHash, EqualForClonedBodiesAcrossModules) {
  // The same filter code stamped into differently-named modules must collide
  // (that is the memo cache's whole premise)...
  auto a = mixed_handlers_image("liba");
  auto b = mixed_handlers_image("libb");
  SehExtractor ex;
  ex.add_image(std::make_shared<isa::Image>(a));
  auto uf = ex.unique_filters();
  ASSERT_EQ(uf.size(), 2u);
  EXPECT_EQ(filter_body_hash(a, uf[0].second), filter_body_hash(b, uf[0].second));
  EXPECT_EQ(filter_body_hash(a, uf[1].second), filter_body_hash(b, uf[1].second));
  // ...while distinct filter bodies in one module must not.
  EXPECT_NE(filter_body_hash(a, uf[0].second), filter_body_hash(a, uf[1].second));
}

TEST(FilterBodyHash, ReferencedStaticDataIsPartOfTheIdentity) {
  // Code-identical filters whose lea_pc-referenced config words differ
  // behave differently, so they must hash differently; equal config words
  // must still collide across modules.
  u64 off_a = only_filter_hash(gated_filter_image("cfg_off", 0));
  u64 off_b = only_filter_hash(gated_filter_image("cfg_off2", 0));
  u64 on = only_filter_hash(gated_filter_image("cfg_on", 1));
  EXPECT_EQ(off_a, off_b);
  EXPECT_NE(off_a, on);
}

std::vector<FilterInfo> classify_corpus(int jobs, u64* executed, u64* queries,
                                        u64* memo_hits) {
  SehExtractor ex;
  ex.add_image(std::make_shared<isa::Image>(mixed_handlers_image("liba")));
  ex.add_image(std::make_shared<isa::Image>(mixed_handlers_image("libb")));
  ex.add_image(std::make_shared<isa::Image>(mixed_handlers_image("libc")));
  ex.add_image(std::make_shared<isa::Image>(gated_filter_image("libgate0", 0)));
  ex.add_image(std::make_shared<isa::Image>(gated_filter_image("libgate1", 1)));
  FilterClassifier fc;
  auto out = fc.classify_all(ex, jobs);
  *executed = fc.filters_executed();
  *queries = fc.sat_queries();
  *memo_hits = fc.memo_hits();
  return out;
}

TEST(FilterClassifier, ClassifyAllIsJobCountInvariant) {
  // The determinism contract: FilterInfo rows AND every funnel counter must
  // be bit-identical whether the sweep runs serial or on 4 workers.
  u64 ex1 = 0, q1 = 0, m1 = 0, ex4 = 0, q4 = 0, m4 = 0;
  auto serial = classify_corpus(1, &ex1, &q1, &m1);
  auto parallel = classify_corpus(4, &ex4, &q4, &m4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].module, parallel[i].module) << i;
    EXPECT_EQ(serial[i].offset, parallel[i].offset) << i;
    EXPECT_EQ(serial[i].verdict, parallel[i].verdict) << i;
    EXPECT_EQ(serial[i].paths_explored, parallel[i].paths_explored) << i;
    EXPECT_EQ(serial[i].handlers_using, parallel[i].handlers_using) << i;
  }
  EXPECT_EQ(ex1, ex4);
  EXPECT_EQ(q1, q4);
  EXPECT_EQ(m1, m4);
}

TEST(FilterClassifier, MemoCacheDeduplicatesClonedFilters) {
  u64 executed = 0, queries = 0, memo_hits = 0;
  auto rows = classify_corpus(2, &executed, &queries, &memo_hits);
  // 3 clones × 2 filters + 2 gated filters = 8 unique (module, offset)
  // items, but only 4 unique bodies run (f_av, f_div, gate-off, gate-on —
  // the two gated filters differ through their referenced config words).
  EXPECT_EQ(executed, 4u);
  EXPECT_EQ(memo_hits, 4u);  // libb + libc rows answered from the memo
  // Verdicts still correct per module.
  int accepts = 0;
  for (const auto& f : rows)
    if (f.offset != isa::kFilterCatchAll && f.verdict == FilterVerdict::kAcceptsAv)
      ++accepts;
  EXPECT_EQ(accepts, 4);  // f_av × 3 clones + the cfg=1 gated filter
}

TEST(SehExtractor, AddImagesBytesMatchesSerialAdds) {
  std::vector<std::vector<u8>> blobs;
  blobs.push_back(isa::write_image(mixed_handlers_image("liba")));
  blobs.push_back(isa::write_image(gated_filter_image("libgate", 1)));
  SehExtractor batch;
  EXPECT_TRUE(batch.add_images_bytes(blobs, 4));
  SehExtractor serial;
  for (const auto& b : blobs) ASSERT_TRUE(serial.add_image_bytes(b));
  ASSERT_EQ(batch.handlers().size(), serial.handlers().size());
  for (size_t i = 0; i < batch.handlers().size(); ++i) {
    EXPECT_EQ(batch.handlers()[i].module, serial.handlers()[i].module) << i;
    EXPECT_EQ(batch.handlers()[i].scope.filter, serial.handlers()[i].scope.filter) << i;
  }
}

TEST(SehExtractor, AddImagesBytesReportsMalformedBlob) {
  std::vector<std::vector<u8>> blobs;
  blobs.push_back(isa::write_image(mixed_handlers_image("liba")));
  blobs.push_back(std::vector<u8>(64, 0x5a));  // garbage
  blobs.push_back(isa::write_image(mixed_handlers_image("libb")));
  SehExtractor ex;
  EXPECT_FALSE(ex.add_images_bytes(blobs, 2));
  // Well-formed blobs are still added, in input order.
  EXPECT_EQ(ex.images().size(), 2u);
  EXPECT_EQ(ex.handlers().size(), 6u);
}

TEST(ApiFuzzer, FuzzAllIsJobCountInvariant) {
  os::Kernel k;
  k.winapi().generate_population(4242, 300, 1.0, 0.4);
  ApiFuzzer fuzzer;
  ApiFuzzResult serial = fuzzer.fuzz_all(k, 1);
  ApiFuzzResult parallel = fuzzer.fuzz_all(k, 4);
  EXPECT_EQ(serial.total_apis, parallel.total_apis);
  EXPECT_EQ(serial.with_pointer_args, parallel.with_pointer_args);
  EXPECT_EQ(serial.probes_executed, parallel.probes_executed);
  EXPECT_EQ(serial.crash_resistant, parallel.crash_resistant);
  EXPECT_FALSE(serial.crash_resistant.empty());
}

TEST(ApiFuzzer, SeparatesResistantFromFaulting) {
  os::Kernel k;
  // 200 synthetic APIs: 100% pointer-taking, 40% resistant.
  k.winapi().generate_population(31337, 200, 1.0, 0.4);
  ApiFuzzer fuzzer;
  ApiFuzzResult res = fuzzer.fuzz_all(k);
  // Base APIs + population.
  EXPECT_GT(res.total_apis, 200u);
  EXPECT_GE(res.with_pointer_args, 190u);
  // Fuzz verdicts must match the generator's ground-truth behaviors exactly.
  for (const auto& [id, spec] : k.winapi().all()) {
    if (id < os::kApiPopulationBase || !spec.has_pointer_arg()) continue;
    bool expected = spec.behavior == os::ApiBehavior::kValidating ||
                    spec.behavior == os::ApiBehavior::kGuardedDeref ||
                    spec.behavior == os::ApiBehavior::kQuery;
    EXPECT_EQ(res.crash_resistant.contains(id), expected) << spec.name;
  }
}

TEST(ApiFuzzer, PopulationRatiosMatchRequest) {
  os::Kernel k;
  k.winapi().generate_population(7, 2000, 0.557, 0.035);
  u32 with_ptr = 0, resistant = 0;
  for (const auto& [id, spec] : k.winapi().all()) {
    if (id < os::kApiPopulationBase) continue;
    if (!spec.has_pointer_arg()) continue;
    ++with_ptr;
    if (spec.behavior != os::ApiBehavior::kUncheckedDeref) ++resistant;
  }
  EXPECT_NEAR(with_ptr / 2000.0, 0.557, 0.05);
  EXPECT_NEAR(static_cast<double>(resistant) / with_ptr, 0.035, 0.02);
}

TEST(ApiCallSiteTracer, ClassifiesExclusionReasons) {
  os::Kernel k;
  // One validating (crash-resistant) API taking a pointer.
  os::ApiSpec api;
  api.id = 500;
  api.name = "NiceApi";
  api.args = {os::ArgKind::kPtrIn};
  api.ptr_sizes = {8};
  api.behavior = os::ApiBehavior::kValidating;
  k.winapi().add(api);

  // App: calls NiceApi 3 ways — with a stack pointer, with a heap pointer
  // that guest code also dereferences, and with a referenced heap pointer.
  Assembler a("app");
  a.label("e");
  // (1) stack pointer
  a.mov(Reg::R1, Reg::SP);
  a.subi(Reg::R1, 64);
  a.label("site1");
  a.apicall(500);
  // (2) heap pointer, also dereferenced by guest code
  a.movi(Reg::R1, 4096);
  a.apicall(os::kApiHeapAlloc);
  a.mov(Reg::R7, Reg::R0);
  a.load(Reg::R3, Reg::R7, 8);  // guest deref
  a.mov(Reg::R1, Reg::R7);
  a.label("site2");
  a.apicall(500);
  // (3) heap pointer stored in a global (referenced), never guest-derefed
  a.movi(Reg::R1, 4096);
  a.apicall(os::kApiHeapAlloc);
  a.lea_pc(Reg::R2, "gref");
  a.store(Reg::R2, 0, Reg::R0, 8);
  a.mov(Reg::R1, Reg::R0);
  a.label("site3");
  a.apicall(500);
  a.halt();
  a.set_entry("e");
  a.data_u64("gref", 0);

  int pid = k.create_process("app", vm::Personality::kWindows, 11);
  k.proc(pid).load(std::make_shared<isa::Image>(a.build()));
  k.start_process(pid);
  trace::Tracer tracer(k, k.proc(pid));
  tracer.set_record_mem_accesses(true);
  k.run(50000);
  ASSERT_FALSE(k.proc(pid).exit_info().crashed);

  std::set<u32> resistant = {500};
  auto sites = ApiCallSiteTracer::analyze(tracer, resistant, k, k.proc(pid), "jscript");
  ASSERT_EQ(sites.size(), 3u);
  const auto& mod = k.proc(pid).machine().modules()[0];
  auto find_site = [&](const char* label) -> const ApiSiteInfo* {
    gva_t want = mod.symbol_addr(label);
    for (const auto& s : sites)
      if (s.call_site == want) return &s;
    return nullptr;
  };
  ASSERT_NE(find_site("site1"), nullptr);
  EXPECT_EQ(find_site("site1")->exclusion, ExclusionReason::kStackPointer);
  ASSERT_NE(find_site("site2"), nullptr);
  EXPECT_EQ(find_site("site2")->exclusion, ExclusionReason::kDerefedOutside);
  ASSERT_NE(find_site("site3"), nullptr);
  EXPECT_EQ(find_site("site3")->exclusion, ExclusionReason::kNone);  // controllable
  for (const auto& s : sites) EXPECT_FALSE(s.script_triggerable);
}

TEST(VehScanner, FindsRuntimeRegisteredAvHandler) {
  // App registers two VEHs: one that resolves AVs (skip + continue), one
  // that never does. Only the first must be reported AV-capable.
  Assembler a("app");
  a.label("e");
  a.movi(Reg::R1, 1);
  a.lea_pc(Reg::R2, "veh_good");
  a.apicall(os::kApiAddVeh);
  a.movi(Reg::R1, 1);
  a.lea_pc(Reg::R2, "veh_pass");
  a.apicall(os::kApiAddVeh);
  a.halt();
  a.label("veh_good");  // R1 = &record
  a.load(Reg::R3, Reg::R1, 8, 0);
  a.cmpi(Reg::R3, kAv);
  a.jcc(Cond::kNe, "vg_no");
  a.load(Reg::R3, Reg::R1, 8, 160);
  a.addi(Reg::R3, 16);
  a.store(Reg::R1, 160, Reg::R3, 8);
  a.movi(Reg::R0, -1);
  a.ret();
  a.label("vg_no");
  a.movi(Reg::R0, 0);
  a.ret();
  a.label("veh_pass");
  a.movi(Reg::R0, 0);
  a.ret();
  a.set_entry("e");

  os::Kernel k;
  int pid = k.create_process("app", vm::Personality::kWindows, 13);
  k.proc(pid).load(std::make_shared<isa::Image>(a.build()));
  k.start_process(pid);
  trace::Tracer tracer(k, k.proc(pid));
  k.run(10000);

  auto handlers = VehScanner::scan(tracer, k.proc(pid));
  ASSERT_EQ(handlers.size(), 2u);
  int accepts = 0;
  for (const auto& h : handlers) {
    EXPECT_EQ(h.module, "app");
    if (h.verdict == FilterVerdict::kAcceptsAv) ++accepts;
  }
  EXPECT_EQ(accepts, 1);
  auto cands = VehScanner::candidates(handlers, "app");
  ASSERT_EQ(cands.size(), 1u);
  EXPECT_EQ(cands[0].cls, PrimitiveClass::kExceptionHandler);
}

TEST(Report, Table1Rendering) {
  std::map<std::string, SyscallScanResult> results;
  SyscallScanResult r;
  r.observed = {os::Sys::kRecv, os::Sys::kOpen};
  Candidate c;
  c.syscall = os::Sys::kRecv;
  c.pointer_arg = 2;
  c.verdict = Verdict::kUsable;
  r.candidates.push_back(c);
  results["srv"] = r;
  std::string out = render_table1({"srv"}, results);
  EXPECT_NE(out.find("recv"), std::string::npos);
  EXPECT_NE(out.find("(+)"), std::string::npos);
  EXPECT_NE(out.find("open"), std::string::npos);
  // Unobserved syscalls are not rendered as rows with data.
  EXPECT_EQ(out.find("sendmsg"), std::string::npos);
}

TEST(Report, FunnelRendering) {
  ApiFunnel f;
  f.total = 20672;
  f.with_pointer = 11521;
  f.crash_resistant = 400;
  f.on_execution_path = 25;
  f.script_triggerable = 12;
  f.controllable = 0;
  f.exclusion_histogram["stack-pointer"] = 5;
  std::string out = render_api_funnel(f);
  EXPECT_NE(out.find("20672"), std::string::npos);
  EXPECT_NE(out.find("55.7%"), std::string::npos);
  EXPECT_NE(out.find("stack-pointer"), std::string::npos);
}

TEST(Candidates, DescribeIsHumanReadable) {
  Candidate c;
  c.cls = PrimitiveClass::kSyscall;
  c.target = "nginx_sim";
  c.syscall = os::Sys::kRecv;
  c.pointer_arg = 2;
  c.verdict = Verdict::kUsable;
  std::string s = c.describe();
  EXPECT_NE(s.find("nginx_sim"), std::string::npos);
  EXPECT_NE(s.find("recv"), std::string::npos);
  EXPECT_NE(s.find("usable"), std::string::npos);
}

}  // namespace
}  // namespace crp::analysis
