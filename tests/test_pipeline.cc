// Tests for the pipeline layer: target registry enumeration, the
// content-addressed ArtifactStore (hit/miss traffic, CRP_CACHE=0 bypass,
// disk tier, key invalidation on content change), artifact codecs, and the
// golden equivalence between the staged Campaign funnel and the
// pre-refactor manual discover()+verify() wiring.

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <mutex>
#include <set>
#include <thread>

#include <gtest/gtest.h>

#include "analysis/report.h"
#include "pipeline/campaign.h"
#include "pipeline/job_queue.h"
#include "targets/nginx.h"
#include "targets/servers.h"

namespace crp::pipeline {
namespace {

// --- TargetRegistry ----------------------------------------------------------

TEST(Registry, EnumeratesEveryTargetExactlyOnce) {
  TargetRegistry reg = TargetRegistry::builtin();
  std::set<std::string> ids;
  for (const TargetSpec& t : reg.all()) {
    EXPECT_TRUE(ids.insert(t.id).second) << "duplicate id: " << t.id;
    EXPECT_EQ(reg.find(t.id), &t);
  }
  // The full corpus: 5 servers, jvm, 3 browser subjects, 2 DLL populations,
  // 1 API corpus.
  EXPECT_EQ(reg.all().size(), 12u);
  EXPECT_EQ(reg.of_class(TargetClass::kLinuxServer).size(), 5u);
  EXPECT_EQ(reg.of_class(TargetClass::kManagedRuntime).size(), 1u);
  EXPECT_EQ(reg.of_class(TargetClass::kBrowser).size(), 3u);
  EXPECT_EQ(reg.of_class(TargetClass::kDllCorpus).size(), 2u);
  EXPECT_EQ(reg.of_class(TargetClass::kApiCorpus).size(), 1u);
  EXPECT_EQ(reg.find("no/such_target"), nullptr);
}

TEST(Registry, TableIServersKeepPaperColumnOrder) {
  TargetRegistry reg = TargetRegistry::builtin();
  auto servers = reg.of_class(TargetClass::kLinuxServer);
  ASSERT_EQ(servers.size(), 5u);
  EXPECT_EQ(servers[0]->id, "server/nginx_sim");
  EXPECT_EQ(servers[1]->id, "server/cherokee_sim");
  EXPECT_EQ(servers[2]->id, "server/lighttpd_sim");
  EXPECT_EQ(servers[3]->id, "server/memcached_sim");
  EXPECT_EQ(servers[4]->id, "server/postgres_sim");
}

TEST(Registry, AddPanicsOnDuplicateId) {
  TargetRegistry reg = TargetRegistry::builtin();
  TargetSpec dup;
  dup.id = "server/nginx_sim";
  EXPECT_DEATH(reg.add(std::move(dup)), "duplicate target id");
}

TEST(Registry, ClassMetadataMatchesPersonality) {
  TargetRegistry reg = TargetRegistry::builtin();
  for (const TargetSpec& t : reg.all()) {
    bool linux_cls = t.cls == TargetClass::kLinuxServer ||
                     t.cls == TargetClass::kManagedRuntime;
    EXPECT_EQ(t.personality,
              linux_cls ? vm::Personality::kLinux : vm::Personality::kWindows)
        << t.id;
    if (linux_cls) {
      EXPECT_NE(t.make_program, nullptr) << t.id;
    }
    if (t.cls == TargetClass::kDllCorpus) {
      EXPECT_NE(t.dll_specs, nullptr) << t.id;
    }
    if (t.cls == TargetClass::kApiCorpus) {
      EXPECT_GT(t.api.total, 0u) << t.id;
    }
  }
}

// --- ArtifactStore -----------------------------------------------------------

TEST(ArtifactStore, HitMissAndTrafficCounters) {
  ArtifactStore store;
  store.set_enabled(true);
  ArtifactKey key{"stage_x", 0x1111, 0x2222};
  std::string value;
  EXPECT_FALSE(store.lookup(key, &value));
  EXPECT_EQ(store.misses(), 1u);

  store.store(key, "payload");
  EXPECT_TRUE(store.lookup(key, &value));
  EXPECT_EQ(value, "payload");
  EXPECT_EQ(store.hits(), 1u);
  EXPECT_EQ(store.stores(), 1u);
  EXPECT_EQ(store.size(), 1u);

  // A different config hash is a different artifact.
  EXPECT_FALSE(store.lookup({"stage_x", 0x1111, 0x3333}, &value));
  EXPECT_EQ(store.misses(), 2u);
}

TEST(ArtifactStore, DisabledStoreIsAPureBypass) {
  ArtifactStore store;
  store.set_enabled(false);
  ArtifactKey key{"stage_x", 1, 2};
  store.store(key, "payload");
  std::string value;
  EXPECT_FALSE(store.lookup(key, &value));
  // Bypass counts nothing: CRP_CACHE=0 must not perturb metrics either.
  EXPECT_EQ(store.hits(), 0u);
  EXPECT_EQ(store.misses(), 0u);
  EXPECT_EQ(store.stores(), 0u);
  EXPECT_EQ(store.size(), 0u);
}

TEST(ArtifactStore, CrpCacheZeroDisablesViaEnv) {
  ::setenv("CRP_CACHE", "0", 1);
  ArtifactStore off;
  ::unsetenv("CRP_CACHE");
  EXPECT_FALSE(off.enabled());
  ArtifactStore on;
  EXPECT_TRUE(on.enabled());
}

TEST(ArtifactStore, DiskTierSurvivesMemoryClear) {
  std::string dir =
      (std::filesystem::temp_directory_path() / "crp_cache_test").string();
  std::filesystem::remove_all(dir);
  ArtifactStore store;
  store.set_dir(dir);
  ArtifactKey key{"filter_classify", 0xabcdef, 0x42};
  store.store(key, "disk payload\nwith a second line");
  store.clear();  // drop the memory tier; disk remains
  std::string value;
  EXPECT_TRUE(store.lookup(key, &value));
  EXPECT_EQ(value, "disk payload\nwith a second line");
  std::filesystem::remove_all(dir);
}

TEST(ArtifactStore, KeyStringIsStable) {
  ArtifactKey key{"taint_trace", 0x1a2b, 0x3c4d};
  EXPECT_EQ(key.str(), "taint_trace-0000000000001a2b-0000000000003c4d");
}

// --- codecs ------------------------------------------------------------------

TEST(Codec, SyscallScanRoundTrips) {
  analysis::SyscallScanResult res;
  res.syscalls_traced = 123456;
  res.instructions = 789;
  res.observed = {os::Sys::kRead, os::Sys::kRecv};
  analysis::Candidate c;
  c.cls = analysis::PrimitiveClass::kSyscall;
  c.target = "nginx_sim";
  c.syscall = os::Sys::kRecv;
  c.pointer_arg = 2;
  c.taint_mask = 0b101;
  c.pointer_home = 0xdeadbeef;
  c.controllable_home = true;
  c.verdict = analysis::Verdict::kUsable;
  c.note = "EFAULT observed; service healthy";
  res.candidates.push_back(c);

  analysis::SyscallScanResult back;
  ASSERT_TRUE(decode_syscall_scan(encode_syscall_scan(res), &back));
  EXPECT_EQ(back.syscalls_traced, res.syscalls_traced);
  EXPECT_EQ(back.observed, res.observed);
  ASSERT_EQ(back.candidates.size(), 1u);
  EXPECT_EQ(back.candidates[0].syscall, os::Sys::kRecv);
  EXPECT_EQ(back.candidates[0].pointer_home, c.pointer_home);
  EXPECT_TRUE(back.candidates[0].controllable_home);
  EXPECT_EQ(back.candidates[0].verdict, analysis::Verdict::kUsable);
  EXPECT_EQ(back.candidates[0].note, c.note);  // %-escaped spaces round-trip
}

TEST(Codec, RejectsWrongKindAndVersion) {
  analysis::ApiFuzzResult fuzz;
  fuzz.total_apis = 10;
  std::string doc = encode_api_fuzz(fuzz);
  analysis::SyscallScanResult scan;
  EXPECT_FALSE(decode_syscall_scan(doc, &scan));  // kind mismatch -> miss
  ClassifyOutcome cls;
  EXPECT_FALSE(decode_classify("crp-artifact v999 filter_classify\n", &cls));
  analysis::ApiFuzzResult back;
  EXPECT_TRUE(decode_api_fuzz(doc, &back));
  EXPECT_EQ(back.total_apis, 10u);
}

// --- cache keys --------------------------------------------------------------

TEST(CacheKey, ChangesWhenImageBytesChange) {
  Campaign campaign;
  analysis::TargetProgram prog = targets::make_nginx();
  ArtifactKey base = campaign.syscall_scan_key(prog);
  EXPECT_EQ(campaign.syscall_scan_key(prog).str(), base.str());  // stable

  // Flip one byte of one image: the content address must move.
  analysis::TargetProgram tweaked = prog;
  auto img = std::make_shared<isa::Image>(*prog.images.back());
  ASSERT_FALSE(img->sections.empty());
  ASSERT_FALSE(img->sections[0].bytes.empty());
  img->sections[0].bytes[0] ^= 0xFF;
  tweaked.images.back() = img;
  EXPECT_NE(campaign.syscall_scan_key(tweaked).input_hash, base.input_hash);
  EXPECT_EQ(campaign.syscall_scan_key(tweaked).config_hash, base.config_hash);

  // A different scan configuration moves the config half of the key.
  CampaignOptions opts;
  opts.syscall.seed = 9999;
  Campaign other(opts);
  EXPECT_NE(other.syscall_scan_key(prog).config_hash, base.config_hash);
  EXPECT_EQ(other.syscall_scan_key(prog).input_hash, base.input_hash);
}

// --- Campaign funnel vs legacy wiring ---------------------------------------

TEST(Campaign, MatchesLegacyWiringByteForByte) {
  // The golden equivalence behind the bench_table1 byte-identity criterion,
  // at unit scale (nginx only — the full five-server check runs in CI):
  // the staged funnel must render exactly the bytes the pre-refactor
  // discover()+verify() wiring rendered.
  analysis::TargetProgram prog = targets::make_nginx();

  analysis::SyscallScanner scanner(prog);
  analysis::SyscallScanResult legacy = scanner.discover();
  for (analysis::Candidate& c : legacy.candidates) scanner.verify(c);

  ArtifactStore store;  // isolated store: this test must compute, not reuse
  Campaign campaign({}, &store);
  ServerScan scan = campaign.scan_program(prog);
  EXPECT_FALSE(scan.cache_hit);

  EXPECT_EQ(scan.result.syscalls_traced, legacy.syscalls_traced);
  EXPECT_EQ(scan.result.observed, legacy.observed);
  ASSERT_EQ(scan.result.candidates.size(), legacy.candidates.size());
  EXPECT_EQ(analysis::render_candidates(scan.result.candidates),
            analysis::render_candidates(legacy.candidates));

  std::vector<std::string> names{prog.name};
  std::map<std::string, analysis::SyscallScanResult> legacy_rows, pipe_rows;
  legacy_rows[prog.name] = legacy;
  pipe_rows[prog.name] = scan.result;
  EXPECT_EQ(analysis::render_table1(names, pipe_rows),
            analysis::render_table1(names, legacy_rows));
}

TEST(Campaign, WarmScanIsACacheHitWithIdenticalRows) {
  analysis::TargetProgram prog = targets::make_nginx();
  ArtifactStore store;
  Campaign campaign({}, &store);

  ServerScan cold = campaign.scan_program(prog);
  EXPECT_FALSE(cold.cache_hit);
  ServerScan warm = campaign.scan_program(prog);
  EXPECT_TRUE(warm.cache_hit);
  EXPECT_GE(store.hits(), 1u);
  EXPECT_EQ(analysis::render_candidates(warm.result.candidates),
            analysis::render_candidates(cold.result.candidates));
  EXPECT_EQ(warm.result.observed, cold.result.observed);
  EXPECT_EQ(warm.result.syscalls_traced, cold.result.syscalls_traced);
}

TEST(Campaign, CacheFalseBypassesTheStore) {
  analysis::TargetProgram prog = targets::make_nginx();
  ArtifactStore store;
  CampaignOptions opts;
  opts.cache = false;
  Campaign campaign(opts, &store);
  ServerScan a = campaign.scan_program(prog);
  ServerScan b = campaign.scan_program(prog);
  EXPECT_FALSE(a.cache_hit);
  EXPECT_FALSE(b.cache_hit);
  EXPECT_EQ(store.hits() + store.misses() + store.stores(), 0u);
  EXPECT_EQ(analysis::render_candidates(a.result.candidates),
            analysis::render_candidates(b.result.candidates));
}

TEST(Campaign, RunTargetReportsServerFunnel) {
  TargetRegistry reg = TargetRegistry::builtin();
  const TargetSpec* nginx = reg.find("server/nginx_sim");
  ASSERT_NE(nginx, nullptr);
  ArtifactStore store;
  Campaign campaign({}, &store);
  TargetReport rep = campaign.run_target(*nginx);
  EXPECT_EQ(rep.id, "server/nginx_sim");
  EXPECT_EQ(rep.cls, TargetClass::kLinuxServer);
  EXPECT_GE(rep.usable, 1);  // recv@nginx, the paper's §V-A primitive
  EXPECT_NE(rep.summary.find("usable"), std::string::npos);
}

// --- shared-store concurrency (leases, LRU, tenants) -------------------------

TEST(ArtifactStore, SingleWriterLeaseCoalescesConcurrentMisses) {
  ArtifactStore store;
  store.set_enabled(true);
  ArtifactKey key{"stage_x", 0xAA, 0xBB};
  std::string value;

  // First acquirer owns the computation.
  ASSERT_EQ(store.acquire(key, &value), Acquire::kOwner);

  std::atomic<bool> waiter_started{false};
  Acquire waiter_result = Acquire::kBypass;
  std::string waiter_value;
  std::thread waiter([&] {
    waiter_started.store(true);
    waiter_result = store.acquire(key, &waiter_value);  // blocks on the lease
  });
  while (!waiter_started.load()) std::this_thread::yield();

  store.finish(key, "computed once");
  waiter.join();
  EXPECT_EQ(waiter_result, Acquire::kHit);
  EXPECT_EQ(waiter_value, "computed once");
  // One miss (the owner), one hit (the waiter): N identical concurrent
  // jobs must cost exactly one computation.
  EXPECT_EQ(store.misses(), 1u);
  EXPECT_EQ(store.hits(), 1u);
}

TEST(ArtifactStore, AbortedLeasePromotesTheNextWaiter) {
  ArtifactStore store;
  store.set_enabled(true);
  ArtifactKey key{"stage_x", 0xCC, 0xDD};
  std::string value;
  ASSERT_EQ(store.acquire(key, &value), Acquire::kOwner);

  std::atomic<bool> waiter_started{false};
  Acquire waiter_result = Acquire::kBypass;
  std::thread waiter([&] {
    waiter_started.store(true);
    std::string v;
    waiter_result = store.acquire(key, &v);
  });
  while (!waiter_started.load()) std::this_thread::yield();

  store.abort_claim(key);  // owner died without publishing
  waiter.join();
  EXPECT_EQ(waiter_result, Acquire::kOwner);
  store.abort_claim(key);  // release the promoted lease too
}

TEST(ArtifactStore, DiskLruEvictsColdArtifactsUnderTheCap) {
  std::string dir =
      (std::filesystem::temp_directory_path() / "crp_lru_test").string();
  std::filesystem::remove_all(dir);
  ArtifactStore store;
  store.set_dir(dir);
  store.set_max_disk_bytes(64 * 1024);

  std::string big(20 * 1024, 'x');
  for (u64 i = 0; i < 8; ++i)
    store.store({"stage_x", i, 0}, big);  // 160 KiB total vs a 64 KiB cap
  EXPECT_GE(store.evictions(), 4u);

  // The most recent artifact must survive (store never evicts the key it
  // just wrote); the oldest must be gone from both tiers.
  store.clear();
  std::string value;
  EXPECT_TRUE(store.lookup({"stage_x", 7, 0}, &value));
  EXPECT_FALSE(store.lookup({"stage_x", 0, 0}, &value));
  std::filesystem::remove_all(dir);
}

TEST(ArtifactStore, TenantAttributionFollowsTheScopedTenant) {
  ArtifactStore store;
  store.set_enabled(true);
  ArtifactKey key{"stage_x", 0xEE, 0xFF};
  std::string value;
  {
    ScopedCacheTenant t("alice");
    EXPECT_FALSE(store.lookup(key, &value));  // alice misses
    store.store(key, "payload");
  }
  {
    ScopedCacheTenant t("bob");
    EXPECT_TRUE(store.lookup(key, &value));  // bob rides alice's work
  }
  EXPECT_EQ(store.tenant_misses("alice"), 1u);
  EXPECT_EQ(store.tenant_hits("alice"), 0u);
  EXPECT_EQ(store.tenant_hits("bob"), 1u);
  EXPECT_EQ(store.tenant_misses("bob"), 0u);
}

// --- JobQueue ----------------------------------------------------------------

const TargetSpec& nginx_spec() {
  static TargetRegistry reg = TargetRegistry::builtin();
  const TargetSpec* s = reg.find("server/nginx_sim");
  CRP_CHECK(s != nullptr);
  return *s;
}

TEST(JobQueue, InlineJobMatchesRunTargetByteForByte) {
  ArtifactStore store_a, store_b;
  Campaign campaign({}, &store_a);
  TargetReport direct = campaign.run_target(nginx_spec());

  JobQueue q(JobQueueOptions{0, &store_b});
  JobSpec js;
  js.target = nginx_spec();
  JobResult r = q.wait(q.submit(std::move(js)));
  ASSERT_EQ(r.state, JobState::kDone);
  EXPECT_EQ(render_report(r.report), render_report(direct));
  EXPECT_EQ(r.steps_done, r.steps_total);
}

TEST(JobQueue, PriorityOrdersInlineDraining) {
  // workers=0: nothing runs until wait() drains, so submission order and
  // execution order are fully decoupled — the queue must pick by priority.
  ArtifactStore store;
  JobQueue q(JobQueueOptions{0, &store});
  std::vector<JobId> completion;
  std::mutex mu;
  q.set_event_sink([&](const JobEvent& ev) {
    if (ev.state == JobState::kDone) {
      std::lock_guard<std::mutex> lk(mu);
      completion.push_back(ev.id);
    }
  });

  JobSpec low;
  low.target = nginx_spec();
  low.priority = 0;
  low.opts.cache = false;
  JobSpec high = low;
  high.priority = 5;
  JobId low_id = q.submit(std::move(low));
  JobId high_id = q.submit(std::move(high));

  JobResult r = q.wait(low_id);  // drains both, highest priority first
  EXPECT_EQ(r.state, JobState::kDone);
  ASSERT_EQ(completion.size(), 2u);
  EXPECT_EQ(completion[0], high_id);
  EXPECT_EQ(completion[1], low_id);
}

TEST(JobQueue, CancelQueuedJobIsImmediate) {
  ArtifactStore store;
  JobQueue q(JobQueueOptions{0, &store});
  JobSpec js;
  js.target = nginx_spec();
  JobId id = q.submit(std::move(js));
  EXPECT_TRUE(q.cancel(id));
  JobResult r;
  ASSERT_TRUE(q.try_result(id, &r));
  EXPECT_EQ(r.state, JobState::kCancelled);
  EXPECT_FALSE(q.cancel(id));  // already terminal
}

TEST(JobQueue, HigherPrioritySubmissionPreemptsAtAStepBoundary) {
  ArtifactStore store;
  JobQueue q(JobQueueOptions{0, &store});
  std::mutex mu;
  std::vector<std::string> order;  // "<id>:<event>" trace
  std::atomic<bool> injected{false};
  JobId low_id = 0, high_id = 0;

  q.set_event_sink([&](const JobEvent& ev) {
    {
      std::lock_guard<std::mutex> lk(mu);
      order.push_back(strf("%llu:%s%s", (unsigned long long)ev.id,
                           job_state_name(ev.state), ev.preempted ? "+p" : ""));
    }
    // After the low job's first completed step, inject a higher-priority
    // job. The engine must requeue `low` at the next boundary, run `high`
    // to completion, then resume `low` from its kept progress.
    if (ev.id == low_id && ev.state == JobState::kRunning && ev.step == 1 &&
        !injected.exchange(true)) {
      JobSpec high;
      high.target = nginx_spec();
      high.priority = 9;
      high.opts.cache = false;
      high_id = q.submit(std::move(high));
    }
  });

  JobSpec low;
  low.target = nginx_spec();
  low.opts.cache = false;
  low_id = q.submit(std::move(low));
  JobResult r = q.wait(low_id);
  ASSERT_EQ(r.state, JobState::kDone);
  ASSERT_TRUE(injected.load());
  JobResult rh;
  ASSERT_TRUE(q.try_result(high_id, &rh));
  EXPECT_EQ(rh.state, JobState::kDone);

  // The trace must contain low's preemption, and high's completion must
  // precede low's.
  std::string low_preempt = strf("%llu:queued+p", (unsigned long long)low_id);
  std::string high_done = strf("%llu:done", (unsigned long long)high_id);
  std::string low_done = strf("%llu:done", (unsigned long long)low_id);
  auto at = [&](const std::string& needle) {
    for (size_t i = 0; i < order.size(); ++i)
      if (order[i] == needle) return static_cast<long>(i);
    return -1L;
  };
  EXPECT_GE(at(low_preempt), 0) << "no preemption event";
  ASSERT_GE(at(high_done), 0);
  ASSERT_GE(at(low_done), 0);
  EXPECT_LT(at(high_done), at(low_done));
}

TEST(JobQueue, FailingCellReportsTheError) {
  ArtifactStore store;
  JobQueue q(JobQueueOptions{0, &store});
  JobSpec js;
  js.target = nginx_spec();
  js.target.id = "server/broken_sim";
  js.target.make_program = +[]() -> analysis::TargetProgram {
    throw std::runtime_error("planted failure");
  };
  JobResult r = q.wait(q.submit(std::move(js)));
  EXPECT_EQ(r.state, JobState::kFailed);
  EXPECT_EQ(r.error, "planted failure");
}

TEST(JobQueue, PreemptedLeaseHolderDoesNotDeadlockSameKeyJobs) {
  // Regression: a priority-0 job takes the store's single-writer lease in
  // its trace step; two priority-1 submissions of the same target preempt
  // it at the step boundary and then block inside acquire() on both
  // workers. Parking must release the lease (promoting a waiter to owner)
  // or the parked job can never be rescheduled and the pool deadlocks.
  ArtifactStore store;
  JobQueue q(JobQueueOptions{2, &store});

  std::mutex mu;
  std::condition_variable cv;
  bool lease_taken = false;   // low finished its trace step (lease held)
  bool highs_queued = false;  // test injected the two same-key rivals
  q.set_event_sink([&](const JobEvent& ev) {
    // The first step-1 running event is the low job completing its trace
    // step (no other job exists yet). Hold it at the boundary (sink runs
    // on the driving worker, outside the queue lock) until both rivals
    // are submitted — the preemption check then sees them
    // deterministically.
    if (ev.state != JobState::kRunning || ev.step != 1) return;
    std::unique_lock<std::mutex> lk(mu);
    if (lease_taken) return;  // later jobs' step-1 events pass through
    lease_taken = true;
    cv.notify_all();
    cv.wait(lk, [&] { return highs_queued; });
  });

  JobSpec low;
  low.target = nginx_spec();
  low.priority = 0;
  JobId low_id = q.submit(std::move(low));
  {
    std::unique_lock<std::mutex> lk(mu);
    cv.wait(lk, [&] { return lease_taken; });
  }
  JobSpec high_a;
  high_a.target = nginx_spec();
  high_a.priority = 1;
  JobSpec high_b = high_a;
  JobId a_id = q.submit(std::move(high_a));
  JobId b_id = q.submit(std::move(high_b));
  {
    std::lock_guard<std::mutex> lk(mu);
    highs_queued = true;
  }
  cv.notify_all();

  JobResult ra = q.wait(a_id);
  JobResult rb = q.wait(b_id);
  JobResult rl = q.wait(low_id);
  ASSERT_EQ(ra.state, JobState::kDone);
  ASSERT_EQ(rb.state, JobState::kDone);
  ASSERT_EQ(rl.state, JobState::kDone);
  std::string rendered = render_report(ra.report, /*cache_tag=*/false);
  EXPECT_EQ(render_report(rb.report, false), rendered);
  EXPECT_EQ(render_report(rl.report, false), rendered);
}

TEST(JobQueue, TerminalJobsAreForgottenBeyondRetention) {
  ArtifactStore store;
  JobQueue q(JobQueueOptions{0, &store, /*retain_terminal=*/2});
  std::vector<JobId> ids;
  for (int i = 0; i < 4; ++i) {
    JobSpec js;
    js.target = nginx_spec();
    JobId id = q.submit(std::move(js));
    ASSERT_EQ(q.wait(id).state, JobState::kDone);
    ids.push_back(id);
  }
  // Only the last two completions are still addressable; older ids answer
  // like they never existed (bounded daemon memory).
  EXPECT_EQ(q.status(ids[0]).error, "unknown job");
  EXPECT_EQ(q.status(ids[1]).error, "unknown job");
  EXPECT_EQ(q.status(ids[2]).state, JobState::kDone);
  EXPECT_EQ(q.status(ids[3]).state, JobState::kDone);
  // wait() on a forgotten id fails instead of blocking forever.
  EXPECT_EQ(q.wait(ids[0]).error, "unknown job");
}

TEST(ArtifactStore, TenantAttributionIsCapped) {
  ArtifactStore store;
  store.set_enabled(true);
  ArtifactKey key{"stage_cap", 0x1, 0x2};
  store.store(key, "payload");
  std::string value;
  // 64 attributed tenants fill the cap; later names still count globally
  // but are not broken out (registry counters must stay bounded).
  for (int i = 0; i < 70; ++i) {
    ScopedCacheTenant t(strf("cap_tenant_%d", i));
    EXPECT_TRUE(store.lookup(key, &value));
  }
  EXPECT_EQ(store.tenant_hits("cap_tenant_0"), 1u);
  EXPECT_EQ(store.tenant_hits("cap_tenant_69"), 0u);
  EXPECT_EQ(store.hits(), 70u);
}

TEST(JobQueue, ThreadedWorkersDrainConcurrentSubmissions) {
  ArtifactStore store;
  JobQueue q(JobQueueOptions{2, &store});
  std::vector<JobId> ids;
  for (int i = 0; i < 6; ++i) {
    JobSpec js;
    js.target = nginx_spec();
    ids.push_back(q.submit(std::move(js)));
  }
  std::string first;
  for (JobId id : ids) {
    JobResult r = q.wait(id);
    ASSERT_EQ(r.state, JobState::kDone);
    std::string rendered = render_report(r.report, /*cache_tag=*/false);
    if (first.empty()) first = rendered;
    EXPECT_EQ(rendered, first);  // identical jobs -> identical reports
  }
  // The shared store collapsed six identical jobs to one computation.
  EXPECT_EQ(store.misses(), 1u);
  EXPECT_GE(store.hits(), 5u);
}

TEST(Campaign, RunTargetScansTheManagedRuntime) {
  TargetRegistry reg = TargetRegistry::builtin();
  const TargetSpec* jvm = reg.find("runtime/jvm_sim");
  ASSERT_NE(jvm, nullptr);
  ArtifactStore store;
  Campaign campaign({}, &store);
  TargetReport rep = campaign.run_target(*jvm);
  EXPECT_EQ(rep.usable, 1);  // the pc-editing SIGSEGV handler
  ASSERT_EQ(rep.candidates.size(), 1u);
  EXPECT_EQ(rep.candidates[0].cls, analysis::PrimitiveClass::kExceptionHandler);
}

}  // namespace
}  // namespace crp::pipeline
