#include <gtest/gtest.h>

#include <memory>

#include "isa/assembler.h"
#include "os/kernel.h"
#include "trace/tracer.h"

namespace crp::trace {
namespace {

using isa::Assembler;
using isa::Cond;
using isa::Reg;

struct World {
  os::Kernel k;
  int pid = 0;
  std::unique_ptr<Tracer> tracer;

  explicit World(isa::Image img, vm::Personality pers = vm::Personality::kLinux) {
    pid = k.create_process(img.name, pers, 5);
    k.proc(pid).load(std::make_shared<isa::Image>(std::move(img)));
    k.start_process(pid);
    tracer = std::make_unique<Tracer>(k, k.proc(pid));
  }
  os::Process& p() { return k.proc(pid); }
};

TEST(Tracer, HitCountsPerInstruction) {
  Assembler a("t");
  a.label("e");
  a.movi(Reg::R7, 3);
  a.label("loop");
  a.subi(Reg::R7, 1);
  a.cmpi(Reg::R7, 0);
  a.jcc(Cond::kNe, "loop");
  a.movi(Reg::R1, 0);
  a.movi(Reg::R0, static_cast<i64>(os::Sys::kExitGroup));
  a.syscall();
  a.set_entry("e");
  World w(a.build());
  w.k.run(10000);
  const auto& mod = w.p().machine().modules()[0];
  gva_t loop_pc = mod.symbol_addr("loop");
  EXPECT_EQ(w.tracer->hit_count(loop_pc), 3u);        // subi executed 3x
  EXPECT_EQ(w.tracer->hit_count(mod.code_addr(0)), 1u);  // movi once
  EXPECT_GT(w.tracer->unique_pcs(), 4u);
}

TEST(Tracer, RangeQueries) {
  Assembler a("t");
  a.label("e");
  a.label("hot_begin");
  a.nop();
  a.nop();
  a.label("hot_end");
  a.jmp("skip");
  a.label("cold_begin");
  a.nop();
  a.label("cold_end");
  a.label("skip");
  a.movi(Reg::R1, 0);
  a.movi(Reg::R0, static_cast<i64>(os::Sys::kExitGroup));
  a.syscall();
  a.set_entry("e");
  World w(a.build());
  w.k.run(10000);
  const auto& mod = w.p().machine().modules()[0];
  EXPECT_TRUE(w.tracer->executed_in_range(mod.symbol_addr("hot_begin"),
                                          mod.symbol_addr("hot_end")));
  EXPECT_FALSE(w.tracer->executed_in_range(mod.symbol_addr("cold_begin"),
                                           mod.symbol_addr("cold_end")));
  EXPECT_EQ(w.tracer->hits_in_range(mod.symbol_addr("hot_begin"),
                                    mod.symbol_addr("hot_end")),
            2u);
}

TEST(Tracer, SyscallLogRecordsArgsAndResult) {
  Assembler a("t");
  a.label("e");
  a.movi(Reg::R1, 0x123);
  a.movi(Reg::R2, 0x456);
  a.movi(Reg::R0, static_cast<i64>(os::Sys::kGetpid));
  a.syscall();
  a.movi(Reg::R1, 0);
  a.movi(Reg::R0, static_cast<i64>(os::Sys::kExitGroup));
  a.syscall();
  a.set_entry("e");
  World w(a.build());
  w.k.run(10000);
  ASSERT_GE(w.tracer->syscalls().size(), 1u);
  const auto& rec = w.tracer->syscalls()[0];
  EXPECT_EQ(rec.nr, os::Sys::kGetpid);
  EXPECT_EQ(rec.args[0], 0x123u);
  EXPECT_EQ(rec.args[1], 0x456u);
  EXPECT_EQ(rec.ret, 1);  // pid 1
}

TEST(Tracer, ApiLogCapturesCallStackModules) {
  // DLL exports a function that makes an API call; app calls it. The API
  // record's stack modules must include both the app and the DLL.
  Assembler dll("scriptdll");
  dll.set_dll(true);
  dll.label("fn");
  dll.movi(Reg::R1, 0);
  dll.apicall(os::kApiGetTickCount);
  dll.ret();
  dll.export_fn("fn", "fn");

  Assembler app("app");
  app.label("e");
  app.call_import("scriptdll", "fn");
  app.halt();
  app.set_entry("e");

  os::Kernel k;
  int pid = k.create_process("app", vm::Personality::kWindows, 5);
  k.proc(pid).load(std::make_shared<isa::Image>(dll.build()));
  k.proc(pid).load(std::make_shared<isa::Image>(app.build()));
  k.start_process(pid);
  Tracer tracer(k, k.proc(pid));
  k.run(10000);

  ASSERT_EQ(tracer.api_calls().size(), 1u);
  const auto& rec = tracer.api_calls()[0];
  EXPECT_EQ(rec.api_id, os::kApiGetTickCount);
  EXPECT_TRUE(Tracer::stack_touches_module(rec, "scriptdll"));
  EXPECT_FALSE(Tracer::stack_touches_module(rec, "jscript9"));
  EXPECT_FALSE(rec.faulted);
}

TEST(Tracer, MemAccessRecordingGated) {
  Assembler a("t");
  a.label("e");
  a.lea_pc(Reg::R2, "cell");
  a.load(Reg::R3, Reg::R2, 8);
  a.movi(Reg::R1, 0);
  a.movi(Reg::R0, static_cast<i64>(os::Sys::kExitGroup));
  a.syscall();
  a.set_entry("e");
  a.data_u64("cell", 7);

  {
    World w(a.build());
    w.k.run(10000);
    gva_t cell = w.p().machine().modules()[0].symbol_addr("cell");
    EXPECT_FALSE(w.tracer->guest_touched(cell));  // off by default
  }
  {
    World w(a.build());
    w.tracer->set_record_mem_accesses(true);
    w.k.run(10000);
    gva_t cell = w.p().machine().modules()[0].symbol_addr("cell");
    EXPECT_TRUE(w.tracer->guest_touched(cell));
    EXPECT_FALSE(w.tracer->guest_touched(cell + 4096));
  }
}

TEST(Tracer, CallStackTracksNesting) {
  Assembler a("t");
  a.label("e");
  a.call("f1");
  a.halt();
  a.label("f1");
  a.call("f2");
  a.ret();
  a.label("f2");
  a.movi(Reg::R0, static_cast<i64>(os::Sys::kGetpid));
  a.syscall();  // syscall from depth 2 — stack observable via tracer state
  a.ret();
  a.set_entry("e");
  World w(a.build(), vm::Personality::kLinux);
  // Snapshot call stack at the syscall via an observer.
  struct Snap : os::KernelObserver {
    Tracer* t = nullptr;
    std::vector<gva_t> stack;
    void on_syscall_enter(os::Process&, os::Thread& th, os::Sys, u64*) override {
      stack = t->call_stack(th.tid);
    }
  } snap;
  snap.t = w.tracer.get();
  w.k.add_observer(&snap);
  w.k.run(10000);
  w.k.remove_observer(&snap);
  const auto& mod = w.p().machine().modules()[0];
  ASSERT_EQ(snap.stack.size(), 2u);
  EXPECT_EQ(snap.stack[0], mod.symbol_addr("f1"));
  EXPECT_EQ(snap.stack[1], mod.symbol_addr("f2"));
}

TEST(Tracer, ClearLogs) {
  Assembler a("t");
  a.label("e");
  a.movi(Reg::R0, static_cast<i64>(os::Sys::kGetpid));
  a.syscall();
  a.halt();
  a.set_entry("e");
  World w(a.build());
  w.k.run(1000);
  EXPECT_FALSE(w.tracer->syscalls().empty());
  w.tracer->clear_logs();
  EXPECT_TRUE(w.tracer->syscalls().empty());
}

}  // namespace
}  // namespace crp::trace
