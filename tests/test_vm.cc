#include <gtest/gtest.h>

#include <array>
#include <memory>
#include <string>
#include <vector>

#include "chaos/prop.h"
#include "isa/assembler.h"
#include "isa/isa.h"
#include "vm/machine.h"
#include "vm/shadow.h"

namespace crp::vm {
namespace {

using isa::Assembler;
using isa::Cond;
using isa::Reg;

/// Build + load an image, returning (machine, cpu at entry with a stack).
struct World {
  std::unique_ptr<Machine> m;
  Cpu cpu;

  explicit World(isa::Image img, Personality pers = Personality::kWindows, u64 seed = 3) {
    m = std::make_unique<Machine>(pers, seed);
    size_t idx = m->load_image(std::make_shared<isa::Image>(std::move(img)));
    const LoadedModule& mod = m->modules()[idx];
    gva_t stack = m->layout().place(mem::RegionKind::kStack, 64 * 1024, "stack");
    CRP_CHECK(m->mem().map(stack, 64 * 1024, mem::kPermR | mem::kPermW));
    cpu.pc = mod.code_addr(mod.image->entry);
    cpu.sp() = stack + 64 * 1024 - 64;
  }

  StepResult run(u64 max_steps = 100000) { return m->run(cpu, max_steps); }
};

TEST(Interp, ArithmeticAndHalt) {
  Assembler a("t");
  a.label("e");
  a.movi(Reg::R1, 6);
  a.movi(Reg::R2, 7);
  a.mul(Reg::R1, Reg::R2);
  a.mov(Reg::R0, Reg::R1);
  a.addi(Reg::R0, 100);
  a.halt();
  a.set_entry("e");
  World w(a.build());
  EXPECT_EQ(w.run().kind, StepKind::kHalt);
  EXPECT_EQ(w.cpu.reg(Reg::R0), 142u);
}

TEST(Interp, FlagsAndBranches) {
  // Compute: R0 = (5 < 7 signed) ? 1 : 2 via jcc.
  Assembler a("t");
  a.label("e");
  a.movi(Reg::R1, 5);
  a.cmpi(Reg::R1, 7);
  a.jcc(Cond::kLt, "less");
  a.movi(Reg::R0, 2);
  a.halt();
  a.label("less");
  a.movi(Reg::R0, 1);
  a.halt();
  a.set_entry("e");
  World w(a.build());
  EXPECT_EQ(w.run().kind, StepKind::kHalt);
  EXPECT_EQ(w.cpu.reg(Reg::R0), 1u);
}

TEST(Interp, UnsignedVsSignedConditions) {
  // -1 (as u64 max) is unsigned-greater than 1, signed-less than 1.
  Assembler a("t");
  a.label("e");
  a.movi(Reg::R1, -1);
  a.cmpi(Reg::R1, 1);
  a.movi(Reg::R2, 0);
  a.jcc(Cond::kUgt, "ugt");
  a.jmp("next");
  a.label("ugt");
  a.ori(Reg::R2, 1);
  a.label("next");
  a.cmpi(Reg::R1, 1);
  a.jcc(Cond::kLt, "slt");
  a.jmp("done");
  a.label("slt");
  a.ori(Reg::R2, 2);
  a.label("done");
  a.mov(Reg::R0, Reg::R2);
  a.halt();
  a.set_entry("e");
  World w(a.build());
  EXPECT_EQ(w.run().kind, StepKind::kHalt);
  EXPECT_EQ(w.cpu.reg(Reg::R0), 3u);
}

TEST(Interp, CallRetAndStack) {
  Assembler a("t");
  a.label("e");
  a.movi(Reg::R1, 10);
  a.call("double_it");
  a.mov(Reg::R0, Reg::R1);
  a.halt();
  a.label("double_it");
  a.add(Reg::R1, Reg::R1);
  a.ret();
  a.set_entry("e");
  World w(a.build());
  EXPECT_EQ(w.run().kind, StepKind::kHalt);
  EXPECT_EQ(w.cpu.reg(Reg::R0), 20u);
}

TEST(Interp, LoadStoreData) {
  Assembler a("t");
  a.label("e");
  a.lea_pc(Reg::R2, "cell");
  a.load(Reg::R1, Reg::R2, 8);
  a.addi(Reg::R1, 1);
  a.store(Reg::R2, 0, Reg::R1, 8);
  a.load(Reg::R0, Reg::R2, 8);
  a.halt();
  a.set_entry("e");
  a.data_u64("cell", 99);
  World w(a.build());
  EXPECT_EQ(w.run().kind, StepKind::kHalt);
  EXPECT_EQ(w.cpu.reg(Reg::R0), 100u);
}

TEST(Interp, DivideByZeroFaults) {
  Assembler a("t");
  a.label("e");
  a.movi(Reg::R1, 10);
  a.movi(Reg::R2, 0);
  a.udiv(Reg::R1, Reg::R2);
  a.halt();
  a.set_entry("e");
  World w(a.build());
  StepResult r = w.run();
  EXPECT_EQ(r.kind, StepKind::kCrash);
  EXPECT_EQ(r.exc.code, ExcCode::kIntDivideByZero);
}

TEST(Interp, UnmappedLoadCrashesWithoutHandler) {
  Assembler a("t");
  a.label("e");
  a.movi(Reg::R2, 0x400000);
  a.load(Reg::R1, Reg::R2, 8);
  a.halt();
  a.set_entry("e");
  World w(a.build());
  StepResult r = w.run();
  EXPECT_EQ(r.kind, StepKind::kCrash);
  EXPECT_EQ(r.exc.code, ExcCode::kAccessViolation);
  EXPECT_EQ(r.exc.fault_addr, 0x400000u);
  EXPECT_EQ(r.exc.access, mem::Access::kRead);
  EXPECT_EQ(w.m->exception_stats().unhandled, 1u);
}

TEST(Seh, CatchAllScopeRecovers) {
  // Listing-3 idiom: __try { value = *ptr; } __except(EXECUTE_HANDLER)
  // { value = -1; }.
  Assembler a("t");
  a.label("e");
  a.movi(Reg::R2, 0x400000);  // invalid ptr
  a.label("try_begin");
  a.load(Reg::R1, Reg::R2, 8);
  a.label("try_end");
  a.jmp("out");
  a.label("handler");
  a.movi(Reg::R1, -1);
  a.label("out");
  a.mov(Reg::R0, Reg::R1);
  a.halt();
  a.set_entry("e");
  a.scope("try_begin", "try_end", "", "handler");
  World w(a.build());
  EXPECT_EQ(w.run().kind, StepKind::kHalt);
  EXPECT_EQ(w.cpu.reg(Reg::R0), ~0ull);
  EXPECT_EQ(w.m->exception_stats().handled_seh, 1u);
  EXPECT_EQ(w.m->exception_stats().unhandled, 0u);
}

// A filter that accepts only access violations: real SEH filter shape.
void build_av_filter(Assembler& a) {
  a.label("av_filter");
  a.cmpi(Reg::R1, static_cast<i64>(0xC0000005));
  a.jcc(Cond::kEq, "av_yes");
  a.movi(Reg::R0, 0);  // CONTINUE_SEARCH
  a.ret();
  a.label("av_yes");
  a.movi(Reg::R0, 1);  // EXECUTE_HANDLER
  a.ret();
}

TEST(Seh, FilterAcceptsAv) {
  Assembler a("t");
  a.label("e");
  a.movi(Reg::R2, 0x400000);
  a.label("tb");
  a.load(Reg::R1, Reg::R2, 8);
  a.label("te");
  a.jmp("out");
  a.label("h");
  a.movi(Reg::R1, 7);
  a.label("out");
  a.mov(Reg::R0, Reg::R1);
  a.halt();
  build_av_filter(a);
  a.set_entry("e");
  a.scope("tb", "te", "av_filter", "h");
  World w(a.build());
  EXPECT_EQ(w.run().kind, StepKind::kHalt);
  EXPECT_EQ(w.cpu.reg(Reg::R0), 7u);
}

TEST(Seh, FilterRejectsOtherExceptions) {
  // Same filter, but the guarded code divides by zero: filter says
  // CONTINUE_SEARCH, no outer scope -> crash.
  Assembler a("t");
  a.label("e");
  a.movi(Reg::R1, 3);
  a.movi(Reg::R2, 0);
  a.label("tb");
  a.udiv(Reg::R1, Reg::R2);
  a.label("te");
  a.halt();
  a.label("h");
  a.halt();
  build_av_filter(a);
  a.set_entry("e");
  a.scope("tb", "te", "av_filter", "h");
  World w(a.build());
  StepResult r = w.run();
  EXPECT_EQ(r.kind, StepKind::kCrash);
  EXPECT_EQ(r.exc.code, ExcCode::kIntDivideByZero);
}

TEST(Seh, NestedScopesInnermostFirst) {
  Assembler a("t");
  a.label("e");
  a.movi(Reg::R2, 0x400000);
  a.label("outer_b");
  a.nop();
  a.label("inner_b");
  a.load(Reg::R1, Reg::R2, 8);
  a.label("inner_e");
  a.nop();
  a.label("outer_e");
  a.halt();
  a.label("inner_h");
  a.movi(Reg::R0, 1);
  a.halt();
  a.label("outer_h");
  a.movi(Reg::R0, 2);
  a.halt();
  a.set_entry("e");
  a.scope("outer_b", "outer_e", "", "outer_h");
  a.scope("inner_b", "inner_e", "", "inner_h");
  World w(a.build());
  EXPECT_EQ(w.run().kind, StepKind::kHalt);
  EXPECT_EQ(w.cpu.reg(Reg::R0), 1u);  // inner handler won
}

TEST(Seh, ContinueSearchFallsToOuterScope) {
  Assembler a("t");
  a.label("e");
  a.movi(Reg::R2, 0x400000);
  a.label("outer_b");
  a.label("inner_b");
  a.load(Reg::R1, Reg::R2, 8);
  a.label("inner_e");
  a.label("outer_e");
  a.halt();
  a.label("reject_filter");
  a.movi(Reg::R0, 0);  // CONTINUE_SEARCH always
  a.ret();
  a.label("inner_h");
  a.movi(Reg::R0, 1);
  a.halt();
  a.label("outer_h");
  a.movi(Reg::R0, 2);
  a.halt();
  a.set_entry("e");
  a.scope("outer_b", "outer_e", "", "outer_h");
  a.scope("inner_b", "inner_e", "reject_filter", "inner_h");
  World w(a.build());
  EXPECT_EQ(w.run().kind, StepKind::kHalt);
  EXPECT_EQ(w.cpu.reg(Reg::R0), 2u);
}

TEST(Seh, ContinueExecutionSkipsFaultViaContextEdit) {
  // Filter increments the saved pc past the faulting load and returns
  // CONTINUE_EXECUTION (-1): execution resumes after the load.
  Assembler a("t");
  a.label("e");
  a.movi(Reg::R2, 0x400000);
  a.movi(Reg::R3, 55);
  a.label("tb");
  a.load(Reg::R3, Reg::R2, 8);  // faults; filter skips it
  a.label("te");
  a.mov(Reg::R0, Reg::R3);
  a.halt();
  a.label("h");  // never used
  a.halt();
  a.label("skip_filter");
  // R2 = &record; saved pc at +160. Advance it by 16.
  a.load(Reg::R3, Reg::R2, 8, 160);
  a.addi(Reg::R3, 16);
  a.store(Reg::R2, 160, Reg::R3, 8);
  a.movi(Reg::R0, -1);
  a.ret();
  a.set_entry("e");
  a.scope("tb", "te", "skip_filter", "h");
  World w(a.build());
  EXPECT_EQ(w.run().kind, StepKind::kHalt);
  EXPECT_EQ(w.cpu.reg(Reg::R0), 55u);  // load skipped, R3 kept its value
  EXPECT_EQ(w.m->exception_stats().continued, 1u);
}

TEST(Veh, VectoredHandlerRunsBeforeScopes) {
  // VEH skips the faulting instruction; the scope handler must NOT run.
  Assembler a("t");
  a.label("e");
  a.lea_pc(Reg::R4, "veh");
  // Register via machine API below (no APICALL in Windows guest-free test);
  // store handler address for host to pick up.
  a.movi(Reg::R2, 0x400000);
  a.label("tb");
  a.load(Reg::R3, Reg::R2, 8);
  a.label("te");
  a.movi(Reg::R0, 1);
  a.halt();
  a.label("h");
  a.movi(Reg::R0, 2);
  a.halt();
  a.label("veh");
  // R1 = &record: advance saved pc.
  a.load(Reg::R3, Reg::R2, 8, 160);
  a.addi(Reg::R3, 16);
  a.store(Reg::R2, 160, Reg::R3, 8);
  a.movi(Reg::R0, -1);  // CONTINUE_EXECUTION
  a.ret();
  a.set_entry("e");
  a.scope("tb", "te", "", "h");
  World w(a.build());
  gva_t veh = w.m->modules()[0].symbol_addr("veh");
  ASSERT_NE(veh, 0u);
  w.m->add_veh(veh);
  EXPECT_EQ(w.run().kind, StepKind::kHalt);
  EXPECT_EQ(w.cpu.reg(Reg::R0), 1u);  // fell through normally, not into handler
  EXPECT_EQ(w.m->exception_stats().handled_veh, 1u);
}

// VEH filter convention: R1 = exception code, R2 = &record. The VEH above
// reads the record via R2 — confirm that contract explicitly.
TEST(Veh, HandlerReceivesRecordPointer) {
  Assembler a("t");
  a.label("e");
  a.movi(Reg::R2, 0x400000);
  a.load(Reg::R3, Reg::R2, 8);  // unguarded fault
  a.halt();
  a.label("veh");
  // Write the observed fault address into a data cell, then resolve by
  // skipping the instruction.
  a.load(Reg::R5, Reg::R2, 8, 16);  // record+16 = fault addr
  a.lea_pc(Reg::R6, "seen");
  a.store(Reg::R6, 0, Reg::R5, 8);
  a.load(Reg::R3, Reg::R2, 8, 160);
  a.addi(Reg::R3, 16);
  a.store(Reg::R2, 160, Reg::R3, 8);
  a.movi(Reg::R0, -1);
  a.ret();
  a.set_entry("e");
  a.data_u64("seen", 0);
  World w(a.build());
  w.m->add_veh(w.m->modules()[0].symbol_addr("veh"));
  EXPECT_EQ(w.run().kind, StepKind::kHalt);
  u64 seen = 0;
  EXPECT_TRUE(w.m->mem().peek_u64(w.m->modules()[0].symbol_addr("seen"), &seen));
  EXPECT_EQ(seen, 0x400000u);
}

TEST(Signals, SigsegvHandlerRecovers) {
  // Linux personality: handler advances saved pc in ucontext.
  Assembler a("t");
  a.label("e");
  a.movi(Reg::R2, 0x400000);
  a.movi(Reg::R3, 11);
  a.load(Reg::R3, Reg::R2, 8);  // SIGSEGV
  a.mov(Reg::R0, Reg::R3);
  a.halt();
  a.label("sig");
  // R2 = &siginfo(record), saved pc at +160 from record base.
  a.load(Reg::R4, Reg::R2, 8, 160);
  a.addi(Reg::R4, 16);
  a.store(Reg::R2, 160, Reg::R4, 8);
  a.ret();
  a.set_entry("e");
  World w(a.build(), Personality::kLinux);
  w.m->set_signal_handler(11, w.m->modules()[0].symbol_addr("sig"));
  EXPECT_EQ(w.run().kind, StepKind::kHalt);
  EXPECT_EQ(w.cpu.reg(Reg::R0), 11u);
  EXPECT_EQ(w.m->exception_stats().handled_signal, 1u);
}

TEST(Signals, HandlerNotAdvancingPcMeansDeath) {
  Assembler a("t");
  a.label("e");
  a.movi(Reg::R2, 0x400000);
  a.load(Reg::R3, Reg::R2, 8);
  a.halt();
  a.label("sig");
  a.ret();  // does not fix the context
  a.set_entry("e");
  World w(a.build(), Personality::kLinux);
  w.m->set_signal_handler(11, w.m->modules()[0].symbol_addr("sig"));
  EXPECT_EQ(w.run().kind, StepKind::kCrash);
}

TEST(Signals, NoHandlerMeansDeath) {
  Assembler a("t");
  a.label("e");
  a.movi(Reg::R2, 0x400000);
  a.load(Reg::R3, Reg::R2, 8);
  a.halt();
  a.set_entry("e");
  World w(a.build(), Personality::kLinux);
  EXPECT_EQ(w.run().kind, StepKind::kCrash);
}

TEST(Policy, MappedOnlyAvKillsUnmappedProbes) {
  // Catch-all scope would normally recover; the §VII policy overrides it for
  // unmapped fault addresses.
  Assembler a("t");
  a.label("e");
  a.movi(Reg::R2, 0x400000);
  a.label("tb");
  a.load(Reg::R1, Reg::R2, 8);
  a.label("te");
  a.halt();
  a.label("h");
  a.movi(Reg::R0, 1);
  a.halt();
  a.set_entry("e");
  a.scope("tb", "te", "", "h");
  World w(a.build());
  w.m->set_mapped_only_av_policy(true);
  EXPECT_EQ(w.run().kind, StepKind::kCrash);
}

TEST(Policy, MappedOnlyAvStillAllowsPermissionFaults) {
  Assembler a("t");
  a.label("e");
  a.lea_pc(Reg::R2, "guarded_cell");  // mapped but we'll write to R-only page
  a.label("tb");
  // Write to a read-only page: mapped, so the handler may run.
  a.store(Reg::R2, 0, Reg::R1, 8);
  a.label("te");
  a.halt();
  a.label("h");
  a.movi(Reg::R0, 77);
  a.halt();
  a.set_entry("e");
  a.data_u64("guarded_cell", 0);
  a.scope("tb", "te", "", "h");
  World w(a.build());
  // Make the whole data section read-only.
  const auto& mod = w.m->modules()[0];
  gva_t cell = mod.symbol_addr("guarded_cell");
  ASSERT_TRUE(w.m->mem().protect(align_down(cell, 4096), 4096, mem::kPermR));
  w.m->set_mapped_only_av_policy(true);
  EXPECT_EQ(w.run().kind, StepKind::kHalt);
  EXPECT_EQ(w.cpu.reg(Reg::R0), 77u);
}

TEST(Subroutine, CallSubroutineReturnsR0) {
  Assembler a("t");
  a.label("e");
  a.halt();
  a.label("fn");
  a.mov(Reg::R0, Reg::R1);
  a.add(Reg::R0, Reg::R2);
  a.ret();
  a.set_entry("e");
  World w(a.build());
  gva_t fn = w.m->modules()[0].symbol_addr("fn");
  auto r = w.m->call_subroutine(w.cpu, fn, {30, 12});
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(*r, 42u);
}

TEST(Subroutine, CrashInsideReturnsNullopt) {
  Assembler a("t");
  a.label("e");
  a.halt();
  a.label("fn");
  a.movi(Reg::R2, 0x400000);
  a.load(Reg::R0, Reg::R2, 8);
  a.ret();
  a.set_entry("e");
  World w(a.build());
  gva_t fn = w.m->modules()[0].symbol_addr("fn");
  EXPECT_FALSE(w.m->call_subroutine(w.cpu, fn, {}).has_value());
}

TEST(Loader, ImportsResolveAcrossModules) {
  Assembler dll("libfoo");
  dll.set_dll(true);
  dll.label("fn");
  dll.movi(Reg::R0, 1234);
  dll.ret();
  dll.export_fn("foo", "fn");
  Assembler app("app");
  app.label("e");
  app.call_import("libfoo", "foo");
  app.halt();
  app.set_entry("e");

  Machine m(Personality::kWindows, 5);
  m.load_image(std::make_shared<isa::Image>(dll.build()));
  size_t app_idx = m.load_image(std::make_shared<isa::Image>(app.build()));
  gva_t stack = m.layout().place(mem::RegionKind::kStack, 16384, "s");
  CRP_CHECK(m.mem().map(stack, 16384, mem::kPermR | mem::kPermW));
  Cpu cpu;
  cpu.pc = m.modules()[app_idx].code_addr(0);
  cpu.sp() = stack + 16000;
  EXPECT_EQ(m.run(cpu, 1000).kind, StepKind::kHalt);
  EXPECT_EQ(cpu.reg(Reg::R0), 1234u);
}

TEST(Loader, UnresolvedImportFaults) {
  Assembler app("app");
  app.label("e");
  app.call_import("nosuch", "fn");
  app.halt();
  app.set_entry("e");
  World w(app.build());
  StepResult r = w.run();
  EXPECT_EQ(r.kind, StepKind::kCrash);
  EXPECT_EQ(r.exc.code, ExcCode::kIllegalInstruction);
}

TEST(Loader, AslrDiffersAcrossSeeds) {
  Assembler a("t");
  a.label("e");
  a.halt();
  a.set_entry("e");
  auto img = std::make_shared<isa::Image>(a.build());
  Machine m1(Personality::kLinux, 10), m2(Personality::kLinux, 20);
  m1.load_image(img);
  m2.load_image(img);
  EXPECT_NE(m1.modules()[0].base, m2.modules()[0].base);
}

TEST(Machine, ModuleLookupByAddressAndName) {
  Assembler a("mymod");
  a.label("e");
  a.halt();
  a.set_entry("e");
  World w(a.build());
  const LoadedModule* mod = w.m->module_named("mymod");
  ASSERT_NE(mod, nullptr);
  EXPECT_EQ(w.m->module_at(mod->code_base()), mod);
  EXPECT_EQ(w.m->module_at(0x1), nullptr);
  EXPECT_EQ(w.m->resolve("mymod", "e"), mod->code_base());
}

}  // namespace
}  // namespace crp::vm

// Appended coverage: cross-frame SEH dispatch and related edge cases. The
// anonymous namespace above already closed, so re-open the test namespace.
namespace crp::vm {
namespace {

using isa::Assembler;
using isa::Cond;
using isa::Reg;

TEST(SehStackWalk, HandlerInCallerFrameCatchesCalleeFault) {
  // The §VI-A shape: caller guards a call; the fault happens inside the
  // callee (different module), and the caller's catch-all must run with the
  // stack unwound to the caller's frame.
  Assembler dll("faultlib");
  dll.set_dll(true);
  dll.label("boom");
  dll.movi(Reg::R2, 0x400000);
  dll.load(Reg::R1, Reg::R2, 8);  // AV deep in the callee
  dll.ret();
  dll.export_fn("boom", "boom");

  Assembler app("app2");
  app.label("e");
  app.movi(Reg::R5, 0x1111);
  app.label("tb");
  app.call_import("faultlib", "boom");
  app.label("te");
  app.movi(Reg::R0, 1);  // not reached
  app.halt();
  app.label("h");
  app.mov(Reg::R0, Reg::R5);  // caller-frame state must be intact
  app.halt();
  app.set_entry("e");
  app.scope("tb", "te", "", "h");

  Machine m(Personality::kWindows, 21);
  m.load_image(std::make_shared<isa::Image>(dll.build()));
  size_t idx = m.load_image(std::make_shared<isa::Image>(app.build()));
  gva_t stack = m.layout().place(mem::RegionKind::kStack, 65536, "s");
  CRP_CHECK(m.mem().map(stack, 65536, mem::kPermR | mem::kPermW));
  Cpu cpu;
  cpu.pc = m.modules()[idx].code_addr(m.modules()[idx].image->entry);
  cpu.sp() = stack + 65000;
  u64 sp_before = cpu.sp();
  EXPECT_EQ(m.run(cpu, 10000).kind, StepKind::kHalt);
  EXPECT_EQ(cpu.reg(Reg::R0), 0x1111u);
  // SP back at the caller's depth (handler ran after unwinding the callee).
  EXPECT_EQ(cpu.sp(), sp_before);
  EXPECT_EQ(m.exception_stats().handled_seh, 1u);
}

TEST(SehStackWalk, TwoLevelsDeep) {
  Assembler a("deep");
  a.label("e");
  a.label("tb");
  a.call("mid");
  a.label("te");
  a.movi(Reg::R0, 1);
  a.halt();
  a.label("h");
  a.movi(Reg::R0, 2);
  a.halt();
  a.label("mid");
  a.call("leaf");
  a.ret();
  a.label("leaf");
  a.movi(Reg::R2, 0x400000);
  a.load(Reg::R1, Reg::R2, 8);
  a.ret();
  a.set_entry("e");
  a.scope("tb", "te", "", "h");
  World w(a.build());
  EXPECT_EQ(w.run().kind, StepKind::kHalt);
  EXPECT_EQ(w.cpu.reg(Reg::R0), 2u);
}

TEST(SehStackWalk, RejectingCallerFilterStillCrashes) {
  Assembler a("deep2");
  a.label("e");
  a.label("tb");
  a.call("leaf");
  a.label("te");
  a.halt();
  a.label("h");
  a.halt();
  a.label("flt");  // rejects everything
  a.movi(Reg::R0, 0);
  a.ret();
  a.label("leaf");
  a.movi(Reg::R2, 0x400000);
  a.load(Reg::R1, Reg::R2, 8);
  a.ret();
  a.set_entry("e");
  a.scope("tb", "te", "flt", "h");
  World w(a.build());
  EXPECT_EQ(w.run().kind, StepKind::kCrash);
}

TEST(Interp, FetchFromNonExecutableFaults) {
  // Jump into the data section: W^X means fetch faults (exec access).
  Assembler a("wx");
  a.label("e");
  a.lea_pc(Reg::R1, "blob");
  a.jmp_reg(Reg::R1);
  a.data_zero("blob", 64);
  a.set_entry("e");
  World w(a.build());
  StepResult r = w.run();
  EXPECT_EQ(r.kind, StepKind::kCrash);
  EXPECT_EQ(r.exc.code, ExcCode::kAccessViolation);
  EXPECT_EQ(r.exc.access, mem::Access::kExec);
}

TEST(Interp, RunBudgetReturnsOk) {
  Assembler a("spin");
  a.label("e");
  a.label("l");
  a.jmp("l");
  a.set_entry("e");
  World w(a.build());
  u64 before = w.m->instret();
  StepResult r = w.m->run(w.cpu, 500);
  EXPECT_EQ(r.kind, StepKind::kOk);  // budget exhausted, no terminal event
  EXPECT_EQ(w.m->instret() - before, 500u);
}

TEST(Seh, FaultInFilterFallsToNextHandler) {
  // Inner filter itself dereferences bad memory -> abandoned
  // (CONTINUE_SEARCH); outer catch-all must still recover.
  Assembler a("ff");
  a.label("e");
  a.movi(Reg::R2, 0x400000);
  a.label("ob");
  a.label("ib");
  a.load(Reg::R1, Reg::R2, 8);
  a.label("ie");
  a.label("oe");
  a.halt();
  a.label("bad_filter");
  a.movi(Reg::R3, 0x500000);
  a.load(Reg::R0, Reg::R3, 8);  // filter faults
  a.ret();
  a.label("ih");
  a.movi(Reg::R0, 1);
  a.halt();
  a.label("oh");
  a.movi(Reg::R0, 2);
  a.halt();
  a.set_entry("e");
  a.scope("ob", "oe", "", "oh");
  a.scope("ib", "ie", "bad_filter", "ih");
  World w(a.build());
  EXPECT_EQ(w.run().kind, StepKind::kHalt);
  EXPECT_EQ(w.cpu.reg(Reg::R0), 2u);  // outer handler won
}

// --- block translation (JIT) vs interpreter ------------------------------------

/// Mirrors TaintEngine's machine wiring without needing an os::Kernel:
/// registered as the shadow's owner so translated traces propagate inline,
/// while interpreted steps propagate through on_exec. One propagation per
/// retired instruction either way.
struct TaintTap : ExecObserver {
  explicit TaintTap(TaintShadow* s) : sh(s) {}
  TaintShadow* sh;
  void on_exec(const ExecEvent& ev, const Cpu& cpu) override {
    (void)cpu;
    if (ev.faulted) return;
    sh->propagate(ev.ins.op, ev.ins.ra, ev.ins.rb, ev.ins.w, ev.mem_addr, ev.mem_size);
  }
};

/// One engine's observable outcome for a differential run.
struct EngineState {
  StepResult res;
  Cpu cpu;
  u64 retired = 0;
  u64 propagated = 0;
  std::vector<u8> data;                // .data buffer contents
  std::vector<u8> stack;               // full stack region contents
  std::array<TaintMask, 16> reg_taint{};
  std::array<gva_t, 16> reg_prov{};
  std::vector<TaintMask> data_taint;
};

/// Run `img` to completion (or `budget` steps) under one engine and capture
/// every piece of state the two engines must agree on.
EngineState run_engine(const isa::Image& img, bool jit, u64 budget) {
  World w(img);
  w.m->set_jit_enabled(jit);
  TaintShadow sh;
  TaintTap tap(&sh);
  w.m->add_observer(&tap);
  w.m->set_taint_shadow(&sh, &tap);

  gva_t stack_base = w.cpu.sp() + 64 - 64 * 1024;

  // Prologue (lea_pc R8 = buf) runs first so the buffer address is known,
  // then taint seeds go in before the random body executes.
  StepResult r = w.m->run(w.cpu, 1);
  EXPECT_EQ(r.kind, StepKind::kOk);
  gva_t buf = w.cpu.reg(Reg::R8);
  sh.set_reg(Reg::R1, 0x2, buf);
  sh.taint_mem(buf, 64, 0x1);

  EngineState out;
  out.res = w.m->run(w.cpu, budget);
  out.cpu = w.cpu;
  out.retired = w.m->instret();
  out.propagated = sh.propagated_instrs();
  out.data.resize(4096);
  EXPECT_TRUE(w.m->mem().peek(buf, out.data));
  out.stack.resize(64 * 1024);
  EXPECT_TRUE(w.m->mem().peek(stack_base, out.stack));
  for (u8 i = 0; i < 16; ++i) {
    out.reg_taint[i] = sh.reg_taint(static_cast<Reg>(i));
    out.reg_prov[i] = sh.reg_prov(static_cast<Reg>(i));
  }
  out.data_taint.resize(4096);
  for (u64 i = 0; i < 4096; ++i) out.data_taint[i] = sh.mem_taint(buf + i, 1);

  w.m->set_taint_shadow(nullptr, nullptr);
  w.m->remove_observer(&tap);
  return out;
}

void expect_engines_agree(const isa::Image& img, u64 budget, u64 seed_for_msg) {
  EngineState a = run_engine(img, /*jit=*/false, budget);
  EngineState b = run_engine(img, /*jit=*/true, budget);
  SCOPED_TRACE("seed=" + std::to_string(seed_for_msg));
  EXPECT_EQ(a.res.kind, b.res.kind);
  EXPECT_EQ(a.res.api_id, b.res.api_id);
  EXPECT_EQ(a.res.exc.code, b.res.exc.code);
  EXPECT_EQ(a.res.exc.fault_pc, b.res.exc.fault_pc);
  EXPECT_EQ(a.res.exc.fault_addr, b.res.exc.fault_addr);
  EXPECT_EQ(a.res.exc.access, b.res.exc.access);
  EXPECT_EQ(a.cpu.pc, b.cpu.pc);
  EXPECT_EQ(a.cpu.regs, b.cpu.regs);
  EXPECT_EQ(a.cpu.zf, b.cpu.zf);
  EXPECT_EQ(a.cpu.sf, b.cpu.sf);
  EXPECT_EQ(a.cpu.cf, b.cpu.cf);
  EXPECT_EQ(a.cpu.of, b.cpu.of);
  EXPECT_EQ(a.retired, b.retired);
  EXPECT_EQ(a.propagated, b.propagated);
  EXPECT_EQ(a.data, b.data);
  EXPECT_EQ(a.stack, b.stack);
  EXPECT_EQ(a.reg_taint, b.reg_taint);
  EXPECT_EQ(a.reg_prov, b.reg_prov);
  EXPECT_EQ(a.data_taint, b.data_taint);
}

/// Random-but-biased instruction block: arithmetic, flag/branch pairs,
/// loads/stores around a valid buffer (with occasional wild pointers and
/// malformed widths), pushes/pops, div-by-maybe-zero, traps. Every path is
/// deterministic given the seed, so interpreter and JIT must agree on all
/// observable state — including where and how they fault.
isa::Image random_block_image(u64 seed) {
  chaos::Gen gen(seed);
  Assembler a("fuzz");
  a.data_zero("buf", 4096);
  a.label("e");
  a.lea_pc(Reg::R8, "buf");
  for (int r = 0; r < 8; ++r)
    a.raw(isa::Instr{isa::Op::kMovRI, static_cast<Reg>(r), Reg::R0, 0,
                     static_cast<i64>(gen.any_u64() >> 33)});
  const int kBody = 28;
  for (int i = 0; i < kBody; ++i) {
    int remaining = kBody - i;  // body slots after this one (before halt)
    u64 pick = gen.any_u64() % 100;
    auto reg = [&](bool any = false) {
      return static_cast<Reg>(gen.any_u64() % (any ? 16 : 13));
    };
    if (pick < 30) {
      // Plain ALU, register or immediate form.
      static const isa::Op kAlu[] = {
          isa::Op::kAddRR, isa::Op::kAddRI, isa::Op::kSubRR, isa::Op::kSubRI,
          isa::Op::kMulRR, isa::Op::kMulRI, isa::Op::kAndRR, isa::Op::kAndRI,
          isa::Op::kOrRR,  isa::Op::kOrRI,  isa::Op::kXorRR, isa::Op::kXorRI,
          isa::Op::kShlRI, isa::Op::kShrRI, isa::Op::kSarRI, isa::Op::kNot,
          isa::Op::kNeg,   isa::Op::kMovRR, isa::Op::kMovRI, isa::Op::kLea};
      isa::Op op = kAlu[gen.any_u64() % (sizeof(kAlu) / sizeof(kAlu[0]))];
      a.raw(isa::Instr{op, reg(), reg(), 0, static_cast<i64>(gen.any_u64() % 4096)});
    } else if (pick < 50) {
      // Memory op near the buffer; sometimes a wild base or a bad width.
      bool wild = gen.any_u64() % 8 == 0;
      u8 w = "\1\2\4\10\3"[gen.any_u64() % 5];  // 3 = malformed
      Reg base = wild ? reg(true) : Reg::R8;
      i64 off = static_cast<i64>(gen.any_u64() % 4200) - 64;  // may cross the end
      if (gen.any_u64() % 2 == 0) {
        a.raw(isa::Instr{isa::Op::kLoad, reg(), base, w, off});
      } else {
        a.raw(isa::Instr{isa::Op::kStore, base, reg(), w, off});
      }
    } else if (pick < 62) {
      // Flag-setting compare followed (sometimes) by a forward jcc.
      isa::Op cmp = gen.any_u64() % 2 == 0 ? isa::Op::kCmpRR : isa::Op::kTestRR;
      a.raw(isa::Instr{cmp, reg(), reg(), 0, 0});
      if (remaining > 1 && gen.any_u64() % 2 == 0) {
        u8 cond = static_cast<u8>(gen.any_u64() % 10);
        i64 skip = static_cast<i64>(gen.any_u64() % static_cast<u64>(remaining - 1));
        a.raw(isa::Instr{isa::Op::kJcc, Reg::R0, Reg::R0, cond,
                         skip * static_cast<i64>(isa::kInstrBytes)});
        ++i;  // the jcc consumed a body slot
      }
    } else if (pick < 72) {
      if (gen.any_u64() % 2 == 0) {
        a.raw(isa::Instr{isa::Op::kPush, reg(), Reg::R0, 0, 0});
      } else {
        a.raw(isa::Instr{isa::Op::kPop, reg(), Reg::R0, 0, 0});
      }
    } else if (pick < 80) {
      isa::Op op = gen.any_u64() % 2 == 0 ? isa::Op::kDivRR : isa::Op::kModRR;
      a.raw(isa::Instr{op, reg(), reg(), 0, 0});  // rb may hold 0: fault path
    } else if (pick < 88) {
      // Unconditional forward jmp.
      i64 skip = remaining > 1
                     ? static_cast<i64>(gen.any_u64() % static_cast<u64>(remaining - 1))
                     : 0;
      a.raw(isa::Instr{isa::Op::kJmp, Reg::R0, Reg::R0, 0,
                       skip * static_cast<i64>(isa::kInstrBytes)});
    } else if (pick < 94) {
      // Garbage word: bad opcode or bad register index (InvalidOpcode path).
      u8 op = static_cast<u8>(44 + gen.any_u64() % 40);
      a.raw(isa::Instr{static_cast<isa::Op>(op), reg(true), reg(true), 0,
                       static_cast<i64>(gen.any_u64())});
    } else if (pick < 97) {
      a.raw(isa::Instr{isa::Op::kApiCall, Reg::R0, Reg::R0, 0,
                       static_cast<i64>(gen.any_u64() % 64)});
    } else {
      // Indirect jump through a (usually garbage) register.
      a.raw(isa::Instr{isa::Op::kJmpR, reg(true), Reg::R0, 0, 0});
    }
  }
  a.halt();
  a.set_entry("e");
  return a.build();
}

TEST(JitDiff, RandomBlocksMatchInterpreterExactly) {
  for (u64 seed = 1; seed <= 40; ++seed) {
    isa::Image img = random_block_image(seed);
    expect_engines_agree(img, /*budget=*/600, seed);
  }
}

TEST(JitDiff, FaultAtEveryTracePosition) {
  // A fault at micro-op position j must leave: j retired instructions after
  // the prologue, pc parked on the faulting word, and the same
  // ExceptionRecord as the interpreter — for both a cold and a warm cache.
  constexpr int kOps = 8;
  for (int pos = 0; pos < kOps; ++pos) {
    Assembler a("fault");
    a.label("e");
    a.movi(Reg::R9, 0);
    a.movi(Reg::R2, 0);
    for (int i = 0; i < kOps; ++i) {
      if (i == pos) {
        a.load(Reg::R1, Reg::R9, 8);  // null deref
      } else {
        a.addi(Reg::R2, 1);
      }
    }
    a.halt();
    a.set_entry("e");
    isa::Image img = a.build();

    World wi(img);
    wi.m->set_jit_enabled(false);
    StepResult ri = wi.run();

    World wj(img);
    wj.m->set_jit_enabled(true);
    Cpu fresh = wj.cpu;  // entry state for the warm re-run
    StepResult rj_cold = wj.run();
    u64 retired_cold = wj.m->instret();
    wj.cpu = fresh;
    StepResult rj_warm = wj.run();

    for (const StepResult* rj : {&rj_cold, &rj_warm}) {
      SCOPED_TRACE("pos=" + std::to_string(pos));
      EXPECT_EQ(rj->kind, StepKind::kCrash);
      EXPECT_EQ(rj->exc.code, ri.exc.code);
      EXPECT_EQ(rj->exc.fault_pc, ri.exc.fault_pc);
      EXPECT_EQ(rj->exc.fault_addr, ri.exc.fault_addr);
      EXPECT_EQ(rj->exc.access, ri.exc.access);
    }
    EXPECT_EQ(wj.cpu.pc, wi.cpu.pc);
    EXPECT_EQ(wj.cpu.regs, wi.cpu.regs);
    // 2 prologue instrs + pos adds retired before the faulting attempt.
    EXPECT_EQ(retired_cold, wi.m->instret());
    EXPECT_EQ(wi.cpu.reg(Reg::R2), static_cast<u64>(pos));
  }
}

TEST(JitDiff, RunBudgetNeverOvershoots) {
  // Infinite loop: retired count must be exactly the budget, for budgets
  // that end mid-trace, at a trace boundary, and across many traces.
  Assembler a("loop");
  a.label("e");
  for (int i = 0; i < 40; ++i) a.addi(Reg::R1, 1);
  a.jmp("e");
  a.set_entry("e");
  isa::Image img = a.build();

  for (u64 budget : {1ull, 5ull, 16ull, 40ull, 41ull, 100ull, 256ull, 257ull, 1000ull}) {
    World wi(img);
    wi.m->set_jit_enabled(false);
    EXPECT_EQ(wi.run(budget).kind, StepKind::kOk);

    World wj(img);
    wj.m->set_jit_enabled(true);
    EXPECT_EQ(wj.run(budget).kind, StepKind::kOk);

    SCOPED_TRACE("budget=" + std::to_string(budget));
    EXPECT_EQ(wi.m->instret(), budget);
    EXPECT_EQ(wj.m->instret(), budget);
    EXPECT_EQ(wj.cpu.pc, wi.cpu.pc);
    EXPECT_EQ(wj.cpu.reg(Reg::R1), wi.cpu.reg(Reg::R1));
  }
}

TEST(JitSmc, HostPokeInvalidatesTranslatedCode) {
  Assembler a("t");
  a.label("e");
  a.halt();
  a.set_entry("e");
  World w(a.build());
  w.m->set_jit_enabled(true);

  gva_t page = w.m->layout().place(mem::RegionKind::kStack, 4096, "smc");
  ASSERT_TRUE(w.m->mem().map(page, 4096, mem::kPermR | mem::kPermW | mem::kPermX));
  auto poke_ins = [&](u64 off, const isa::Instr& ins) {
    ASSERT_TRUE(w.m->mem().poke(page + off, isa::encode(ins)));
  };
  poke_ins(0, {isa::Op::kMovRI, Reg::R0, Reg::R0, 0, 1});
  poke_ins(16, {isa::Op::kHalt, Reg::R0, Reg::R0, 0, 0});

  w.cpu.pc = page;
  EXPECT_EQ(w.run().kind, StepKind::kHalt);
  EXPECT_EQ(w.cpu.reg(Reg::R0), 1u);  // trace now cached

  poke_ins(0, {isa::Op::kMovRI, Reg::R0, Reg::R0, 0, 2});
  w.cpu.pc = page;
  EXPECT_EQ(w.run().kind, StepKind::kHalt);
  EXPECT_EQ(w.cpu.reg(Reg::R0), 2u);  // stale trace would have produced 1
}

TEST(JitSmc, GuestStoreIntoOwnTraceTakesEffect) {
  // The block overwrites an instruction *later in its own trace* before
  // reaching it: store-store-(movi R0,1 -> movi R0,2)-halt. Both engines
  // must execute the rewritten word.
  auto build = [](Machine& m, Cpu& cpu) {
    gva_t page = m.layout().place(mem::RegionKind::kStack, 4096, "smc2");
    ASSERT_TRUE(m.mem().map(page, 4096, mem::kPermR | mem::kPermW | mem::kPermX));
    auto put = [&](u64 off, const isa::Instr& ins) {
      ASSERT_TRUE(m.mem().poke(page + off, isa::encode(ins)));
    };
    put(0, {isa::Op::kStore, Reg::R8, Reg::R1, 8, 32});
    put(16, {isa::Op::kStore, Reg::R8, Reg::R2, 8, 40});
    put(32, {isa::Op::kMovRI, Reg::R0, Reg::R0, 0, 1});
    put(48, {isa::Op::kHalt, Reg::R0, Reg::R0, 0, 0});
    std::array<u8, 16> neu = isa::encode({isa::Op::kMovRI, Reg::R0, Reg::R0, 0, 2});
    u64 lo = 0, hi = 0;
    for (int i = 0; i < 8; ++i) lo |= static_cast<u64>(neu[i]) << (8 * i);
    for (int i = 0; i < 8; ++i) hi |= static_cast<u64>(neu[8 + i]) << (8 * i);
    cpu.reg(Reg::R8) = page;
    cpu.reg(Reg::R1) = lo;
    cpu.reg(Reg::R2) = hi;
    cpu.pc = page;
  };

  Assembler a("t");
  a.label("e");
  a.halt();
  a.set_entry("e");
  isa::Image img = a.build();

  u64 r0[2];
  int k = 0;
  for (bool jit : {false, true}) {
    World w(img);
    w.m->set_jit_enabled(jit);
    build(*w.m, w.cpu);
    EXPECT_EQ(w.run().kind, StepKind::kHalt);
    r0[k++] = w.cpu.reg(Reg::R0);
  }
  EXPECT_EQ(r0[0], 2u);  // interpreter sees the rewritten instruction
  EXPECT_EQ(r0[1], r0[0]);
}

}  // namespace
}  // namespace crp::vm
