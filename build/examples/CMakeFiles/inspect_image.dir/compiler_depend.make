# Empty compiler generated dependencies file for inspect_image.
# This may be replaced when dependencies are built.
