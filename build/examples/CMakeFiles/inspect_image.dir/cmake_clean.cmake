file(REMOVE_RECURSE
  "CMakeFiles/inspect_image.dir/inspect_image.cpp.o"
  "CMakeFiles/inspect_image.dir/inspect_image.cpp.o.d"
  "inspect_image"
  "inspect_image.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inspect_image.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
