# Empty compiler generated dependencies file for discover_servers.
# This may be replaced when dependencies are built.
