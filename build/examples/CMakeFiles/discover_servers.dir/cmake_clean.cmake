file(REMOVE_RECURSE
  "CMakeFiles/discover_servers.dir/discover_servers.cpp.o"
  "CMakeFiles/discover_servers.dir/discover_servers.cpp.o.d"
  "discover_servers"
  "discover_servers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/discover_servers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
