# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_isa[1]_include.cmake")
include("/root/repo/build/tests/test_mem[1]_include.cmake")
include("/root/repo/build/tests/test_vm[1]_include.cmake")
include("/root/repo/build/tests/test_os[1]_include.cmake")
include("/root/repo/build/tests/test_taint[1]_include.cmake")
include("/root/repo/build/tests/test_symex[1]_include.cmake")
include("/root/repo/build/tests/test_trace[1]_include.cmake")
include("/root/repo/build/tests/test_analysis[1]_include.cmake")
include("/root/repo/build/tests/test_targets[1]_include.cmake")
include("/root/repo/build/tests/test_oracle[1]_include.cmake")
include("/root/repo/build/tests/test_defense[1]_include.cmake")
include("/root/repo/build/tests/test_cfg[1]_include.cmake")
include("/root/repo/build/tests/test_asm_text[1]_include.cmake")
