# Empty compiler generated dependencies file for test_symex.
# This may be replaced when dependencies are built.
