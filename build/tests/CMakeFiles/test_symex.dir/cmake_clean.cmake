file(REMOVE_RECURSE
  "CMakeFiles/test_symex.dir/test_symex.cc.o"
  "CMakeFiles/test_symex.dir/test_symex.cc.o.d"
  "test_symex"
  "test_symex.pdb"
  "test_symex[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_symex.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
