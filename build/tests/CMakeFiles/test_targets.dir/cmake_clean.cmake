file(REMOVE_RECURSE
  "CMakeFiles/test_targets.dir/test_targets.cc.o"
  "CMakeFiles/test_targets.dir/test_targets.cc.o.d"
  "test_targets"
  "test_targets.pdb"
  "test_targets[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_targets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
