# Empty compiler generated dependencies file for test_asm_text.
# This may be replaced when dependencies are built.
