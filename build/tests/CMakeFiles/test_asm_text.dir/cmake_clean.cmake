file(REMOVE_RECURSE
  "CMakeFiles/test_asm_text.dir/test_asm_text.cc.o"
  "CMakeFiles/test_asm_text.dir/test_asm_text.cc.o.d"
  "test_asm_text"
  "test_asm_text.pdb"
  "test_asm_text[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_asm_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
