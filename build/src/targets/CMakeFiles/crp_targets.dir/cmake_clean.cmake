file(REMOVE_RECURSE
  "CMakeFiles/crp_targets.dir/browser.cc.o"
  "CMakeFiles/crp_targets.dir/browser.cc.o.d"
  "CMakeFiles/crp_targets.dir/cherokee.cc.o"
  "CMakeFiles/crp_targets.dir/cherokee.cc.o.d"
  "CMakeFiles/crp_targets.dir/common.cc.o"
  "CMakeFiles/crp_targets.dir/common.cc.o.d"
  "CMakeFiles/crp_targets.dir/dll_corpus.cc.o"
  "CMakeFiles/crp_targets.dir/dll_corpus.cc.o.d"
  "CMakeFiles/crp_targets.dir/jvm.cc.o"
  "CMakeFiles/crp_targets.dir/jvm.cc.o.d"
  "CMakeFiles/crp_targets.dir/lighttpd.cc.o"
  "CMakeFiles/crp_targets.dir/lighttpd.cc.o.d"
  "CMakeFiles/crp_targets.dir/memcached.cc.o"
  "CMakeFiles/crp_targets.dir/memcached.cc.o.d"
  "CMakeFiles/crp_targets.dir/nginx.cc.o"
  "CMakeFiles/crp_targets.dir/nginx.cc.o.d"
  "CMakeFiles/crp_targets.dir/postgres.cc.o"
  "CMakeFiles/crp_targets.dir/postgres.cc.o.d"
  "libcrp_targets.a"
  "libcrp_targets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crp_targets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
