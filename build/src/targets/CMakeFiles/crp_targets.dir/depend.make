# Empty dependencies file for crp_targets.
# This may be replaced when dependencies are built.
