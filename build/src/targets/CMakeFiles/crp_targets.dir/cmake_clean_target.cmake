file(REMOVE_RECURSE
  "libcrp_targets.a"
)
