
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/targets/browser.cc" "src/targets/CMakeFiles/crp_targets.dir/browser.cc.o" "gcc" "src/targets/CMakeFiles/crp_targets.dir/browser.cc.o.d"
  "/root/repo/src/targets/cherokee.cc" "src/targets/CMakeFiles/crp_targets.dir/cherokee.cc.o" "gcc" "src/targets/CMakeFiles/crp_targets.dir/cherokee.cc.o.d"
  "/root/repo/src/targets/common.cc" "src/targets/CMakeFiles/crp_targets.dir/common.cc.o" "gcc" "src/targets/CMakeFiles/crp_targets.dir/common.cc.o.d"
  "/root/repo/src/targets/dll_corpus.cc" "src/targets/CMakeFiles/crp_targets.dir/dll_corpus.cc.o" "gcc" "src/targets/CMakeFiles/crp_targets.dir/dll_corpus.cc.o.d"
  "/root/repo/src/targets/jvm.cc" "src/targets/CMakeFiles/crp_targets.dir/jvm.cc.o" "gcc" "src/targets/CMakeFiles/crp_targets.dir/jvm.cc.o.d"
  "/root/repo/src/targets/lighttpd.cc" "src/targets/CMakeFiles/crp_targets.dir/lighttpd.cc.o" "gcc" "src/targets/CMakeFiles/crp_targets.dir/lighttpd.cc.o.d"
  "/root/repo/src/targets/memcached.cc" "src/targets/CMakeFiles/crp_targets.dir/memcached.cc.o" "gcc" "src/targets/CMakeFiles/crp_targets.dir/memcached.cc.o.d"
  "/root/repo/src/targets/nginx.cc" "src/targets/CMakeFiles/crp_targets.dir/nginx.cc.o" "gcc" "src/targets/CMakeFiles/crp_targets.dir/nginx.cc.o.d"
  "/root/repo/src/targets/postgres.cc" "src/targets/CMakeFiles/crp_targets.dir/postgres.cc.o" "gcc" "src/targets/CMakeFiles/crp_targets.dir/postgres.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/crp_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/crp_os.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/crp_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/crp_util.dir/DependInfo.cmake"
  "/root/repo/build/src/cfg/CMakeFiles/crp_cfg.dir/DependInfo.cmake"
  "/root/repo/build/src/taint/CMakeFiles/crp_taint.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/crp_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/symex/CMakeFiles/crp_symex.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/crp_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/crp_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
