# Empty dependencies file for crp_analysis.
# This may be replaced when dependencies are built.
