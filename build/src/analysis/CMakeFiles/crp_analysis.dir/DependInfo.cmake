
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/api_analysis.cc" "src/analysis/CMakeFiles/crp_analysis.dir/api_analysis.cc.o" "gcc" "src/analysis/CMakeFiles/crp_analysis.dir/api_analysis.cc.o.d"
  "/root/repo/src/analysis/candidates.cc" "src/analysis/CMakeFiles/crp_analysis.dir/candidates.cc.o" "gcc" "src/analysis/CMakeFiles/crp_analysis.dir/candidates.cc.o.d"
  "/root/repo/src/analysis/guard_audit.cc" "src/analysis/CMakeFiles/crp_analysis.dir/guard_audit.cc.o" "gcc" "src/analysis/CMakeFiles/crp_analysis.dir/guard_audit.cc.o.d"
  "/root/repo/src/analysis/report.cc" "src/analysis/CMakeFiles/crp_analysis.dir/report.cc.o" "gcc" "src/analysis/CMakeFiles/crp_analysis.dir/report.cc.o.d"
  "/root/repo/src/analysis/seh_analysis.cc" "src/analysis/CMakeFiles/crp_analysis.dir/seh_analysis.cc.o" "gcc" "src/analysis/CMakeFiles/crp_analysis.dir/seh_analysis.cc.o.d"
  "/root/repo/src/analysis/signal_scanner.cc" "src/analysis/CMakeFiles/crp_analysis.dir/signal_scanner.cc.o" "gcc" "src/analysis/CMakeFiles/crp_analysis.dir/signal_scanner.cc.o.d"
  "/root/repo/src/analysis/syscall_scanner.cc" "src/analysis/CMakeFiles/crp_analysis.dir/syscall_scanner.cc.o" "gcc" "src/analysis/CMakeFiles/crp_analysis.dir/syscall_scanner.cc.o.d"
  "/root/repo/src/analysis/veh_scanner.cc" "src/analysis/CMakeFiles/crp_analysis.dir/veh_scanner.cc.o" "gcc" "src/analysis/CMakeFiles/crp_analysis.dir/veh_scanner.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cfg/CMakeFiles/crp_cfg.dir/DependInfo.cmake"
  "/root/repo/build/src/taint/CMakeFiles/crp_taint.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/crp_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/symex/CMakeFiles/crp_symex.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/crp_os.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/crp_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/crp_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/crp_util.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/crp_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
