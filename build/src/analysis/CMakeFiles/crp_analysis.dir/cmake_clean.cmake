file(REMOVE_RECURSE
  "CMakeFiles/crp_analysis.dir/api_analysis.cc.o"
  "CMakeFiles/crp_analysis.dir/api_analysis.cc.o.d"
  "CMakeFiles/crp_analysis.dir/candidates.cc.o"
  "CMakeFiles/crp_analysis.dir/candidates.cc.o.d"
  "CMakeFiles/crp_analysis.dir/guard_audit.cc.o"
  "CMakeFiles/crp_analysis.dir/guard_audit.cc.o.d"
  "CMakeFiles/crp_analysis.dir/report.cc.o"
  "CMakeFiles/crp_analysis.dir/report.cc.o.d"
  "CMakeFiles/crp_analysis.dir/seh_analysis.cc.o"
  "CMakeFiles/crp_analysis.dir/seh_analysis.cc.o.d"
  "CMakeFiles/crp_analysis.dir/signal_scanner.cc.o"
  "CMakeFiles/crp_analysis.dir/signal_scanner.cc.o.d"
  "CMakeFiles/crp_analysis.dir/syscall_scanner.cc.o"
  "CMakeFiles/crp_analysis.dir/syscall_scanner.cc.o.d"
  "CMakeFiles/crp_analysis.dir/veh_scanner.cc.o"
  "CMakeFiles/crp_analysis.dir/veh_scanner.cc.o.d"
  "libcrp_analysis.a"
  "libcrp_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crp_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
