file(REMOVE_RECURSE
  "libcrp_analysis.a"
)
