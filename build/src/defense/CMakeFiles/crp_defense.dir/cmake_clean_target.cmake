file(REMOVE_RECURSE
  "libcrp_defense.a"
)
