file(REMOVE_RECURSE
  "CMakeFiles/crp_defense.dir/rate_detector.cc.o"
  "CMakeFiles/crp_defense.dir/rate_detector.cc.o.d"
  "libcrp_defense.a"
  "libcrp_defense.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crp_defense.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
