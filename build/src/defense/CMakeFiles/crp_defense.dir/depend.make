# Empty dependencies file for crp_defense.
# This may be replaced when dependencies are built.
