file(REMOVE_RECURSE
  "CMakeFiles/crp_oracle.dir/crash_tolerant.cc.o"
  "CMakeFiles/crp_oracle.dir/crash_tolerant.cc.o.d"
  "CMakeFiles/crp_oracle.dir/oracle.cc.o"
  "CMakeFiles/crp_oracle.dir/oracle.cc.o.d"
  "libcrp_oracle.a"
  "libcrp_oracle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crp_oracle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
