file(REMOVE_RECURSE
  "libcrp_oracle.a"
)
