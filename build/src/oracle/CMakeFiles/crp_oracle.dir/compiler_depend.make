# Empty compiler generated dependencies file for crp_oracle.
# This may be replaced when dependencies are built.
