file(REMOVE_RECURSE
  "CMakeFiles/crp_vm.dir/machine.cc.o"
  "CMakeFiles/crp_vm.dir/machine.cc.o.d"
  "CMakeFiles/crp_vm.dir/module.cc.o"
  "CMakeFiles/crp_vm.dir/module.cc.o.d"
  "libcrp_vm.a"
  "libcrp_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crp_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
