# Empty compiler generated dependencies file for crp_vm.
# This may be replaced when dependencies are built.
