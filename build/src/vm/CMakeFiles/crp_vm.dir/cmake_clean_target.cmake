file(REMOVE_RECURSE
  "libcrp_vm.a"
)
