file(REMOVE_RECURSE
  "CMakeFiles/crp_taint.dir/taint.cc.o"
  "CMakeFiles/crp_taint.dir/taint.cc.o.d"
  "libcrp_taint.a"
  "libcrp_taint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crp_taint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
