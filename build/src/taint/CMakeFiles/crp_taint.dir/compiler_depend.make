# Empty compiler generated dependencies file for crp_taint.
# This may be replaced when dependencies are built.
