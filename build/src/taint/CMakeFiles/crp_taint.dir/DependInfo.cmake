
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/taint/taint.cc" "src/taint/CMakeFiles/crp_taint.dir/taint.cc.o" "gcc" "src/taint/CMakeFiles/crp_taint.dir/taint.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/os/CMakeFiles/crp_os.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/crp_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/crp_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/crp_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/crp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
