file(REMOVE_RECURSE
  "libcrp_taint.a"
)
