file(REMOVE_RECURSE
  "CMakeFiles/crp_util.dir/common.cc.o"
  "CMakeFiles/crp_util.dir/common.cc.o.d"
  "CMakeFiles/crp_util.dir/hexdump.cc.o"
  "CMakeFiles/crp_util.dir/hexdump.cc.o.d"
  "CMakeFiles/crp_util.dir/log.cc.o"
  "CMakeFiles/crp_util.dir/log.cc.o.d"
  "CMakeFiles/crp_util.dir/rng.cc.o"
  "CMakeFiles/crp_util.dir/rng.cc.o.d"
  "CMakeFiles/crp_util.dir/table.cc.o"
  "CMakeFiles/crp_util.dir/table.cc.o.d"
  "libcrp_util.a"
  "libcrp_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crp_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
