file(REMOVE_RECURSE
  "libcrp_util.a"
)
