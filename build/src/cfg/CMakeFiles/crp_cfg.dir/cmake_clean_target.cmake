file(REMOVE_RECURSE
  "libcrp_cfg.a"
)
