# Empty compiler generated dependencies file for crp_cfg.
# This may be replaced when dependencies are built.
