file(REMOVE_RECURSE
  "CMakeFiles/crp_cfg.dir/cfg.cc.o"
  "CMakeFiles/crp_cfg.dir/cfg.cc.o.d"
  "libcrp_cfg.a"
  "libcrp_cfg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crp_cfg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
