file(REMOVE_RECURSE
  "libcrp_symex.a"
)
