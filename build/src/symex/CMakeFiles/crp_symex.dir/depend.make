# Empty dependencies file for crp_symex.
# This may be replaced when dependencies are built.
