file(REMOVE_RECURSE
  "CMakeFiles/crp_symex.dir/bitblast.cc.o"
  "CMakeFiles/crp_symex.dir/bitblast.cc.o.d"
  "CMakeFiles/crp_symex.dir/expr.cc.o"
  "CMakeFiles/crp_symex.dir/expr.cc.o.d"
  "CMakeFiles/crp_symex.dir/filter_exec.cc.o"
  "CMakeFiles/crp_symex.dir/filter_exec.cc.o.d"
  "CMakeFiles/crp_symex.dir/sat.cc.o"
  "CMakeFiles/crp_symex.dir/sat.cc.o.d"
  "CMakeFiles/crp_symex.dir/solver.cc.o"
  "CMakeFiles/crp_symex.dir/solver.cc.o.d"
  "libcrp_symex.a"
  "libcrp_symex.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crp_symex.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
