
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/symex/bitblast.cc" "src/symex/CMakeFiles/crp_symex.dir/bitblast.cc.o" "gcc" "src/symex/CMakeFiles/crp_symex.dir/bitblast.cc.o.d"
  "/root/repo/src/symex/expr.cc" "src/symex/CMakeFiles/crp_symex.dir/expr.cc.o" "gcc" "src/symex/CMakeFiles/crp_symex.dir/expr.cc.o.d"
  "/root/repo/src/symex/filter_exec.cc" "src/symex/CMakeFiles/crp_symex.dir/filter_exec.cc.o" "gcc" "src/symex/CMakeFiles/crp_symex.dir/filter_exec.cc.o.d"
  "/root/repo/src/symex/sat.cc" "src/symex/CMakeFiles/crp_symex.dir/sat.cc.o" "gcc" "src/symex/CMakeFiles/crp_symex.dir/sat.cc.o.d"
  "/root/repo/src/symex/solver.cc" "src/symex/CMakeFiles/crp_symex.dir/solver.cc.o" "gcc" "src/symex/CMakeFiles/crp_symex.dir/solver.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/isa/CMakeFiles/crp_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/crp_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/crp_util.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/crp_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
