file(REMOVE_RECURSE
  "libcrp_isa.a"
)
