# Empty compiler generated dependencies file for crp_isa.
# This may be replaced when dependencies are built.
