file(REMOVE_RECURSE
  "CMakeFiles/crp_isa.dir/asm_text.cc.o"
  "CMakeFiles/crp_isa.dir/asm_text.cc.o.d"
  "CMakeFiles/crp_isa.dir/assembler.cc.o"
  "CMakeFiles/crp_isa.dir/assembler.cc.o.d"
  "CMakeFiles/crp_isa.dir/image.cc.o"
  "CMakeFiles/crp_isa.dir/image.cc.o.d"
  "CMakeFiles/crp_isa.dir/isa.cc.o"
  "CMakeFiles/crp_isa.dir/isa.cc.o.d"
  "libcrp_isa.a"
  "libcrp_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crp_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
