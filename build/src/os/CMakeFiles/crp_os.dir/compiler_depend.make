# Empty compiler generated dependencies file for crp_os.
# This may be replaced when dependencies are built.
