
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/os/abi.cc" "src/os/CMakeFiles/crp_os.dir/abi.cc.o" "gcc" "src/os/CMakeFiles/crp_os.dir/abi.cc.o.d"
  "/root/repo/src/os/kernel.cc" "src/os/CMakeFiles/crp_os.dir/kernel.cc.o" "gcc" "src/os/CMakeFiles/crp_os.dir/kernel.cc.o.d"
  "/root/repo/src/os/net.cc" "src/os/CMakeFiles/crp_os.dir/net.cc.o" "gcc" "src/os/CMakeFiles/crp_os.dir/net.cc.o.d"
  "/root/repo/src/os/process.cc" "src/os/CMakeFiles/crp_os.dir/process.cc.o" "gcc" "src/os/CMakeFiles/crp_os.dir/process.cc.o.d"
  "/root/repo/src/os/vfs.cc" "src/os/CMakeFiles/crp_os.dir/vfs.cc.o" "gcc" "src/os/CMakeFiles/crp_os.dir/vfs.cc.o.d"
  "/root/repo/src/os/winapi.cc" "src/os/CMakeFiles/crp_os.dir/winapi.cc.o" "gcc" "src/os/CMakeFiles/crp_os.dir/winapi.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/vm/CMakeFiles/crp_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/crp_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/crp_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/crp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
