file(REMOVE_RECURSE
  "libcrp_os.a"
)
