file(REMOVE_RECURSE
  "CMakeFiles/crp_os.dir/abi.cc.o"
  "CMakeFiles/crp_os.dir/abi.cc.o.d"
  "CMakeFiles/crp_os.dir/kernel.cc.o"
  "CMakeFiles/crp_os.dir/kernel.cc.o.d"
  "CMakeFiles/crp_os.dir/net.cc.o"
  "CMakeFiles/crp_os.dir/net.cc.o.d"
  "CMakeFiles/crp_os.dir/process.cc.o"
  "CMakeFiles/crp_os.dir/process.cc.o.d"
  "CMakeFiles/crp_os.dir/vfs.cc.o"
  "CMakeFiles/crp_os.dir/vfs.cc.o.d"
  "CMakeFiles/crp_os.dir/winapi.cc.o"
  "CMakeFiles/crp_os.dir/winapi.cc.o.d"
  "libcrp_os.a"
  "libcrp_os.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crp_os.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
