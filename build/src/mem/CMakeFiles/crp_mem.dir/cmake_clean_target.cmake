file(REMOVE_RECURSE
  "libcrp_mem.a"
)
