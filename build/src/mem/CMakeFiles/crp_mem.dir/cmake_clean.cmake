file(REMOVE_RECURSE
  "CMakeFiles/crp_mem.dir/address_space.cc.o"
  "CMakeFiles/crp_mem.dir/address_space.cc.o.d"
  "CMakeFiles/crp_mem.dir/layout.cc.o"
  "CMakeFiles/crp_mem.dir/layout.cc.o.d"
  "libcrp_mem.a"
  "libcrp_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crp_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
