# Empty compiler generated dependencies file for crp_mem.
# This may be replaced when dependencies are built.
