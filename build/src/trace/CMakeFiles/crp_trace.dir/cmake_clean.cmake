file(REMOVE_RECURSE
  "CMakeFiles/crp_trace.dir/tracer.cc.o"
  "CMakeFiles/crp_trace.dir/tracer.cc.o.d"
  "libcrp_trace.a"
  "libcrp_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crp_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
