file(REMOVE_RECURSE
  "libcrp_trace.a"
)
