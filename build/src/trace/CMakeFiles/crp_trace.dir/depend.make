# Empty dependencies file for crp_trace.
# This may be replaced when dependencies are built.
