# Empty dependencies file for bench_seh_funnel.
# This may be replaced when dependencies are built.
