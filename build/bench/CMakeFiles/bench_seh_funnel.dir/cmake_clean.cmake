file(REMOVE_RECURSE
  "CMakeFiles/bench_seh_funnel.dir/bench_seh_funnel.cc.o"
  "CMakeFiles/bench_seh_funnel.dir/bench_seh_funnel.cc.o.d"
  "bench_seh_funnel"
  "bench_seh_funnel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_seh_funnel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
