file(REMOVE_RECURSE
  "CMakeFiles/bench_api_funnel.dir/bench_api_funnel.cc.o"
  "CMakeFiles/bench_api_funnel.dir/bench_api_funnel.cc.o.d"
  "bench_api_funnel"
  "bench_api_funnel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_api_funnel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
