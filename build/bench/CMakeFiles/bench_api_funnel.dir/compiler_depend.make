# Empty compiler generated dependencies file for bench_api_funnel.
# This may be replaced when dependencies are built.
