# Empty dependencies file for bench_probe_scan.
# This may be replaced when dependencies are built.
