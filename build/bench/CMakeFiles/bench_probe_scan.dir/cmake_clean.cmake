file(REMOVE_RECURSE
  "CMakeFiles/bench_probe_scan.dir/bench_probe_scan.cc.o"
  "CMakeFiles/bench_probe_scan.dir/bench_probe_scan.cc.o.d"
  "bench_probe_scan"
  "bench_probe_scan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_probe_scan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
