file(REMOVE_RECURSE
  "CMakeFiles/bench_crash_tolerance.dir/bench_crash_tolerance.cc.o"
  "CMakeFiles/bench_crash_tolerance.dir/bench_crash_tolerance.cc.o.d"
  "bench_crash_tolerance"
  "bench_crash_tolerance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_crash_tolerance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
