# Empty compiler generated dependencies file for bench_av_rate.
# This may be replaced when dependencies are built.
