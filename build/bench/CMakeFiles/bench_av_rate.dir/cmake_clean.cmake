file(REMOVE_RECURSE
  "CMakeFiles/bench_av_rate.dir/bench_av_rate.cc.o"
  "CMakeFiles/bench_av_rate.dir/bench_av_rate.cc.o.d"
  "bench_av_rate"
  "bench_av_rate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_av_rate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
