
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_table2.cc" "bench/CMakeFiles/bench_table2.dir/bench_table2.cc.o" "gcc" "bench/CMakeFiles/bench_table2.dir/bench_table2.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/oracle/CMakeFiles/crp_oracle.dir/DependInfo.cmake"
  "/root/repo/build/src/defense/CMakeFiles/crp_defense.dir/DependInfo.cmake"
  "/root/repo/build/src/targets/CMakeFiles/crp_targets.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/crp_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/symex/CMakeFiles/crp_symex.dir/DependInfo.cmake"
  "/root/repo/build/src/taint/CMakeFiles/crp_taint.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/crp_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/crp_os.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/crp_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/crp_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/crp_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/crp_util.dir/DependInfo.cmake"
  "/root/repo/build/src/cfg/CMakeFiles/crp_cfg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
