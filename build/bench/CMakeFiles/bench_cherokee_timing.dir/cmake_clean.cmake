file(REMOVE_RECURSE
  "CMakeFiles/bench_cherokee_timing.dir/bench_cherokee_timing.cc.o"
  "CMakeFiles/bench_cherokee_timing.dir/bench_cherokee_timing.cc.o.d"
  "bench_cherokee_timing"
  "bench_cherokee_timing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cherokee_timing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
